"""The search engine: SERP serving plus the search-side intervention levers.

Interventions (Section 3.2.1):

* **Demotion** — a per-host score penalty applied from a given day; strong
  penalties push every page on the host out of the top 100.
* **Deindexing** — full removal from the index.
* **"Hacked" label** — attached only to the *root* result of a labeled host
  by default (the policy limitation Section 5.2.2 quantifies); the
  ``label_root_only`` flag exists so ablations can lift the restriction.
* **Malware label** — interstitial, modeled as a near-zero click multiplier.

Serving is columnar (the simulator calls :meth:`SearchEngine.serp` once per
(term, day), making it the hot path of every study run): per-term candidate
arrays come from :meth:`SearchIndex.columns`, static scores and penalty
columns are cached against the index's per-term version counter and a
penalty epoch respectively, noise is drawn in one batch from the same
seeded stream the scalar loop used, and top-k selection runs through
``np.argpartition`` with a full-sort fallback when the host-clustering cap
exhausts the partition.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from itertools import repeat
from operator import itemgetter
from time import perf_counter
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.perf.cache import caches_enabled
from repro.util.perf import PERF

_SERP_TIMER = PERF.handle("engine.serp")

#: Bound on memoized (term, day) serves per engine — a season of daily
#: serves for a paper-preset term census.
_SERP_CACHE_SIZE = 4096
from repro.util.rng import RandomStreams
from repro.util.simtime import SimDate
from repro.search.index import SearchIndex, TermColumns
from repro.search.ranking import NoiseSource, RankingModel
from repro.search.serp import ResultLabel, SearchResult, Serp

#: ``since`` ordinal larger than any real day: "never takes effect".
_NEVER = 2**62


@dataclass
class HostPenalty:
    since: SimDate
    amount: float


@dataclass
class HostLabel:
    since: SimDate
    label: ResultLabel


class SearchEngine:
    """Serves top-k organic results for (term, day) queries."""

    def __init__(
        self,
        index: SearchIndex,
        streams: RandomStreams,
        ranking: Optional[RankingModel] = None,
        serp_size: int = 100,
        label_root_only: bool = True,
        max_results_per_host: int = 2,
    ):
        self.index = index
        self.ranking = ranking if ranking is not None else RankingModel()
        self.serp_size = serp_size
        self.label_root_only = label_root_only
        #: Host-clustering cap, like Google's same-domain result limit.
        self.max_results_per_host = max_results_per_host
        self._noise = NoiseSource(streams, self.ranking.noise_sigma)
        self._penalties: Dict[str, HostPenalty] = {}
        self._labels: Dict[str, HostLabel] = {}
        #: Bumped whenever the penalty/label maps change; per-term penalty
        #: and label columns are rebuilt lazily when their epoch falls
        #: behind.
        self._penalty_epoch = 0
        self._labels_epoch = 0
        #: term -> (columns-object, static-score array).  Keyed by the
        #: TermColumns *identity*, which the index replaces on every term
        #: mutation — so stale statics (including id()-recycled entries
        #: after a deindex/re-add cycle) can never be served.
        self._static_cache: Dict[str, Tuple[TermColumns, np.ndarray]] = {}
        #: term -> (columns, epoch, penalized positions, amounts, since-ords).
        self._penalty_cache: Dict[
            str, Tuple[TermColumns, int, np.ndarray, np.ndarray, np.ndarray]
        ] = {}
        #: term -> (columns, epoch, per-entry label since-ords, per-entry
        #: resolved labels).
        self._label_cache: Dict[
            str, Tuple[TermColumns, int, np.ndarray, List[ResultLabel]]
        ] = {}
        #: (term, day-ordinal) -> (columns, penalty epoch, labels epoch,
        #: served Serp).  Rankings are deterministic within an epoch (the
        #: noise stream is a pure function of (term, day)), so a repeat
        #: serve may return the memoized page verbatim.  Entries validate
        #: lazily: a hit only counts when the term's columns object is
        #: still the live one *and* both epochs match — index mutations,
        #: demotions, labels, and deindexing all break one of the three,
        #: so a stale page can never be served.  LRU-bounded; dies with
        #: the engine.
        self._serp_cache: "OrderedDict[Tuple[str, int], Tuple[TermColumns, int, int, Serp]]" = (
            OrderedDict()
        )

    # ------------------------------------------------------------------ #
    # Intervention levers
    # ------------------------------------------------------------------ #

    def demote_host(self, host: str, day: SimDate, amount: float) -> None:
        """Apply (or deepen) a ranking penalty on a host from ``day``."""
        existing = self._penalties.get(host)
        if existing is not None and existing.amount >= amount:
            return
        self._penalties[host] = HostPenalty(since=day, amount=amount)
        self._penalty_epoch += 1

    def deindex_host(self, host: str) -> int:
        if self._penalties.pop(host, None) is not None:
            self._penalty_epoch += 1
        return self.index.remove_host(host)

    def label_host(self, host: str, day: SimDate, label: ResultLabel) -> None:
        self._labels[host] = HostLabel(since=day, label=label)
        self._labels_epoch += 1

    def label_of(self, host: str, day: SimDate) -> ResultLabel:
        state = self._labels.get(host)
        if state is None or day < state.since:
            return ResultLabel.NONE
        return state.label

    def labeled_hosts(self) -> Dict[str, HostLabel]:
        return dict(self._labels)

    def penalized_hosts(self) -> Dict[str, HostPenalty]:
        """Hosts currently under a ranking penalty (metrics sampling)."""
        return dict(self._penalties)

    def penalty_of(self, host: str, day: SimDate) -> float:
        state = self._penalties.get(host)
        if state is None or day < state.since:
            return 0.0
        return state.amount

    # ------------------------------------------------------------------ #
    # Columnar caches
    # ------------------------------------------------------------------ #

    def _static_for(self, term: str, cols: TermColumns) -> np.ndarray:
        cached = self._static_cache.get(term)
        if cached is not None and cached[0] is cols:
            return cached[1]
        static = self.ranking.w_authority * cols.authority
        static += self.ranking.w_relevance * cols.relevance
        self._static_cache[term] = (cols, static)
        return static

    def _penalty_for(
        self, term: str, cols: TermColumns
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(positions, amounts, since-ordinals) over just the *penalized*
        entries — usually a small fraction of the term's candidates —
        rebuilt only when penalties or candidates change."""
        cached = self._penalty_cache.get(term)
        if cached is not None and cached[0] is cols and cached[1] == self._penalty_epoch:
            return cached[2], cached[3], cached[4]
        positions: List[int] = []
        amounts: List[float] = []
        sinces: List[int] = []
        penalties = self._penalties
        for i, host in enumerate(cols.hosts):
            penalty = penalties.get(host)
            if penalty is not None:
                positions.append(i)
                amounts.append(penalty.amount)
                sinces.append(penalty.since.ordinal)
        columns = (
            np.asarray(positions, dtype=np.intp),
            np.asarray(amounts, dtype=np.float64),
            np.asarray(sinces, dtype=np.int64),
        )
        self._penalty_cache[term] = (cols, self._penalty_epoch) + columns
        return columns

    def _labels_for(
        self, term: str, cols: TermColumns
    ) -> Tuple[np.ndarray, List[ResultLabel]]:
        """Per-entry (label since-ordinal, resolved label) columns.  The
        resolution bakes in the root-only "hacked" policy, so serving only
        needs a day comparison per result."""
        cached = self._label_cache.get(term)
        if cached is not None and cached[0] is cols and cached[1] == self._labels_epoch:
            return cached[2], cached[3]
        n = len(cols.entries)
        sinces = np.full(n, _NEVER, dtype=np.int64)
        resolved: List[ResultLabel] = [ResultLabel.NONE] * n
        labels = self._labels
        root_only = self.label_root_only
        for i, host in enumerate(cols.hosts):
            state = labels.get(host)
            if state is None:
                continue
            label = state.label
            if (
                label is ResultLabel.HACKED
                and root_only
                and cols.paths[i] not in ("", "/")
            ):
                continue
            sinces[i] = state.since.ordinal
            resolved[i] = label
        self._label_cache[term] = (cols, self._labels_epoch, sinces, resolved)
        return sinces, resolved

    # ------------------------------------------------------------------ #
    # Query serving
    # ------------------------------------------------------------------ #

    def serp(self, term: str, day) -> Serp:
        """Rank candidates and return the top ``serp_size`` results.

        Repeat serves of the same (term, day) under unchanged index and
        intervention state return the memoized page (bit-identical to a
        fresh serve — the golden-snapshot test pins this); consumers treat
        Serp objects as read-only, as they already must for the serps the
        simulator shares across one day's observers."""
        start = perf_counter()
        try:
            if type(day) is not SimDate:
                day = SimDate(day)
            if not caches_enabled():
                return self._serp(term, day)
            key = (term, day.ordinal)
            cached = self._serp_cache.get(key)
            if cached is not None:
                cols, penalty_epoch, labels_epoch, serp = cached
                if (
                    penalty_epoch == self._penalty_epoch
                    and labels_epoch == self._labels_epoch
                    and cols is self.index.columns(term)
                ):
                    self._serp_cache.move_to_end(key)
                    PERF.count("cache.serp.hit")
                    return serp
            PERF.count("cache.serp.miss")
            serp = self._serp(term, day)
            self._serp_cache[key] = (
                self.index.columns(term), self._penalty_epoch,
                self._labels_epoch, serp,
            )
            if len(self._serp_cache) > _SERP_CACHE_SIZE:
                self._serp_cache.popitem(last=False)
                PERF.count("cache.serp.evict")
            return serp
        finally:
            _SERP_TIMER.add(perf_counter() - start)

    def _serp(self, term: str, day: SimDate) -> Serp:
        cols = self.index.columns(term)
        n = len(cols.entries)
        if n == 0:
            return Serp(term=term, day=day, results=[])
        day_ord = day.ordinal

        # Noise is drawn for eligible candidates only, in candidate order —
        # the exact draw sequence of the original scalar loop.
        if cols.max_indexed_ord <= day_ord:
            eligible = None  # everything is indexed; skip the masking
            n_eligible = n
            scores = self._static_for(term, cols) + self._noise.batch(term, day, n)
        else:
            eligible = cols.indexed_ord <= day_ord
            idx = np.flatnonzero(eligible)
            n_eligible = idx.size
            if n_eligible == 0:
                return Serp(term=term, day=day, results=[])
            scores = self._static_for(term, cols).copy()
            scores[idx] += self._noise.batch(term, day, n_eligible)

        # Grouped signals: one schedule evaluation broadcast over member
        # qualities.  (level * quality) * w_seo is bit-identical to the
        # scalar loop's w_seo * (level * quality) — float multiplication
        # commutes exactly.
        w_seo = self.ranking.w_seo
        for level, positions, qualities in cols.seo_groups:
            boost = level(day) * qualities
            boost *= w_seo
            scores[positions] += boost
        if cols.seo_signals:
            seo = np.fromiter(
                (signal(day) for signal in cols.seo_signals),
                dtype=np.float64, count=len(cols.seo_signals),
            )
            scores[cols.seo_positions] += self.ranking.w_seo * seo

        if self._penalties:
            positions, amounts, sinces = self._penalty_for(term, cols)
            if positions.size:
                active = sinces <= day_ord
                if active.all():
                    scores[positions] -= amounts
                else:
                    scores[positions[active]] -= amounts[active]

        if eligible is not None:
            scores[~eligible] = -np.inf

        # Top-k selection: partition out a generous prefix (serp_size plus
        # host-cap slack) and sort just that.  Plain (unstable) argsort is
        # safe: eligible scores carry continuous per-query noise, so exact
        # ties are measure-zero, and the ``-inf`` ineligible block — the
        # one place duplicates *do* occur — still sorts last as a group
        # and is cut by position (``n_eligible``), never by order.
        partition = min(n, self.serp_size * max(2, self.max_results_per_host))
        partitioned = partition < n
        neg = -scores
        if partitioned:
            order = np.argpartition(neg, partition - 1)[:partition]
            order = order[np.argsort(neg[order])]
        else:
            order = np.argsort(neg)

        results = self._fill(term, day, cols, scores, order, n_eligible)
        if partitioned and len(results) < self.serp_size:
            # The host cap swallowed the whole partition: fall back to the
            # full stable sort (rare — a single host dominating the top).
            order = np.argsort(-scores, kind="stable")
            results = self._fill(term, day, cols, scores, order, n_eligible)
        return Serp(term=term, day=day, results=results)

    def _fill(
        self,
        term: str,
        day: SimDate,
        cols: TermColumns,
        scores: np.ndarray,
        order: np.ndarray,
        n_eligible: int,
    ) -> List[SearchResult]:
        """Apply the per-host result cap and materialize results, in bulk.

        Ineligible candidates sank to the bottom of ``order`` with ``-inf``
        scores, so dropping them is a position cut at ``n_eligible``.  The
        host cap is an occurrence count in score order over only the
        entries whose host *can* exceed the cap (``cols.host_counts``);
        result objects are built through ``tuple.__new__`` over ``zip`` —
        the generated NamedTuple ``__new__`` is a Python wrapper,
        measurable at serp_size constructions per query.
        """
        serp_size = self.serp_size
        cap = self.max_results_per_host
        n = len(order)
        drops: List[int] = []
        if cols.max_host_count > cap:
            # Only entries on hosts with more than ``cap`` candidates can
            # ever be dropped; count occurrences over just that (small)
            # subset instead of grouping the whole ranking.
            crowded = (cols.host_counts[order] > cap).nonzero()[0]
            if crowded.size:
                codes = cols.host_codes[order[crowded]].tolist()
                seen: Dict[int, int] = {}
                stop = serp_size
                for pos, code in zip(crowded.tolist(), codes):
                    if pos >= stop:
                        # Every current and future drop sits past the final
                        # cut (its post-drop rank is >= serp_size), so the
                        # remaining tail cannot change the page.
                        break
                    count = seen.get(code, 0)
                    if count >= cap:
                        drops.append(pos)
                        stop += 1
                    else:
                        seen[code] = count + 1
        if drops:
            keep = np.ones(n, dtype=bool)
            keep[drops] = False
            if n_eligible < n:
                keep[n_eligible:] = False
            kept_arr = order[keep][:serp_size]
        elif n_eligible < n:
            kept_arr = order[: min(serp_size, n_eligible)]
        else:
            kept_arr = order[:serp_size]
        kept = kept_arr.tolist()
        m = len(kept)
        if m == 0:
            return []
        none_label = ResultLabel.NONE
        if m == 1:
            i = kept[0]
            host = cols.hosts[i]
            label = (
                self._result_label(host, cols.paths[i], day)
                if host in self._labels
                else none_label
            )
            return [SearchResult(
                1, cols.urls[i], host, cols.paths[i], label,
                float(scores[i]), cols.entries[i],
            )]
        labels: object
        if not self._labels:
            labels = repeat(none_label)
        else:
            sinces, resolved = self._labels_for(term, cols)
            active = sinces[kept_arr] <= day.ordinal
            if active.any():
                labels = [none_label] * m
                for j in active.nonzero()[0].tolist():
                    labels[j] = resolved[kept[j]]
            else:
                labels = repeat(none_label)
        sel = itemgetter(*kept)
        # .tolist() on the selected slice: indexing the ndarray element by
        # element would hand back NumPy scalars, slow everywhere downstream.
        return list(map(tuple.__new__, repeat(SearchResult), zip(
            range(1, m + 1),
            sel(cols.urls),
            sel(cols.hosts),
            sel(cols.paths),
            labels,
            scores[kept_arr].tolist(),
            sel(cols.entries),
        )))

    def site_query(self, host: str, day) -> List[str]:
        """'site:<host>' — every indexed URL on a host visible on ``day``.

        The paper used these queries to collect all search results
        originating from a doorway and extract its targeted keywords from
        the URL paths (Section 4.1.1)."""
        day = SimDate(day)
        return sorted({
            entry.url
            for entry in self.index.entries_for_host(host)
            if entry.indexed_on is None or entry.indexed_on <= day
        })

    def _result_label(self, host: str, path: str, day: SimDate) -> ResultLabel:
        label = self.label_of(host, day)
        if label is ResultLabel.NONE:
            return label
        if label is ResultLabel.HACKED and self.label_root_only and path not in ("", "/"):
            # The policy gap of Section 5.2.2: only root results get the
            # "hacked" subtitle, sub-page PSRs escape unlabeled.
            return ResultLabel.NONE
        return label
