"""Verticals, search terms, and query volume.

A *vertical* is the paper's unit of monitoring (Section 4.1.1): a set of
search terms centered on one brand (e.g., "Louis Vuitton") or a composite
category (e.g., "Sunglasses").  Terms are generated the way the paper's
Google-Suggest method produced them: adjective + brand + product-noun
combinations.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.util.ids import slugify
from repro.util.rng import RandomStreams

#: Adjectives the paper lists for suggestion expansion (Section 4.1.1).
TERM_ADJECTIVES = ("cheap", "new", "online", "outlet", "sale", "store", "discount", "replica")
TERM_NOUNS = (
    "bags", "handbags", "wallet", "shoes", "boots", "jacket", "outlet store",
    "official", "sale 2014", "free shipping", "uk", "usa", "review", "price",
)


@dataclass
class Vertical:
    """A monitored market niche: name, constituent brands, search terms.

    ``terms`` is what the measurement crawl monitors; ``universe`` is the
    larger set of queries campaigns actually target (the paper's crawl
    covered a subset of the term space, which is why its Section 4.1.1
    bias check — re-crawling with an alternate term sample — was needed).
    """

    name: str
    brands: List[str]
    terms: List[str] = field(default_factory=list)
    composite: bool = False
    universe: List[str] = field(default_factory=list)

    @property
    def slug(self) -> str:
        return slugify(self.name)

    def __post_init__(self):
        if not self.brands:
            raise ValueError(f"vertical {self.name!r} needs at least one brand")
        if len(self.terms) != len(set(self.terms)):
            raise ValueError(f"vertical {self.name!r} has duplicate terms")
        if not self.universe:
            self.universe = list(self.terms)
        missing = set(self.terms) - set(self.universe)
        if missing:
            raise ValueError(
                f"vertical {self.name!r}: monitored terms missing from "
                f"universe: {sorted(missing)[:3]}"
            )

    def unmonitored_terms(self) -> List[str]:
        monitored = set(self.terms)
        return [t for t in self.universe if t not in monitored]

    def __hash__(self):
        return hash(self.name)


def generate_terms(
    vertical_name: str, brands: Sequence[str], count: int, streams: RandomStreams
) -> List[str]:
    """Produce ``count`` unique search terms for a vertical.

    Mirrors the suggestion-expansion recipe: "<adjective> <brand>",
    "<brand> <noun>", and "<adjective> <brand> <noun>" combinations,
    sampled without replacement.
    """
    rng = streams.get(f"terms:{slugify(vertical_name)}")
    pool: List[str] = []
    for brand in brands:
        base = brand.lower()
        pool.extend(f"{adj} {base}" for adj in TERM_ADJECTIVES)
        pool.extend(f"{base} {noun}" for noun in TERM_NOUNS)
        pool.extend(
            f"{adj} {base} {noun}"
            for adj, noun in itertools.product(TERM_ADJECTIVES, TERM_NOUNS)
        )
    # Dedupe while preserving order, then sample.
    seen = set()
    unique = []
    for term in pool:
        if term not in seen:
            seen.add(term)
            unique.append(term)
    if count > len(unique):
        raise ValueError(
            f"vertical {vertical_name!r}: requested {count} terms, only {len(unique)} available"
        )
    return sorted(rng.sample(unique, count))


def make_vertical(
    name: str, brands: Sequence[str], term_count: int, streams: RandomStreams,
    composite: bool = False, universe_factor: float = 2.0,
) -> Vertical:
    """Build a vertical: a term universe plus the monitored subset."""
    if universe_factor < 1.0:
        raise ValueError("universe_factor must be >= 1.0")
    universe_count = max(term_count, round(term_count * universe_factor))
    universe = generate_terms(name, brands, universe_count, streams)
    rng = streams.get(f"monitored:{slugify(name)}")
    terms = sorted(rng.sample(universe, term_count))
    return Vertical(name=name, brands=list(brands), terms=terms,
                    composite=composite, universe=universe)


class QueryVolumeModel:
    """Daily search volume per term.

    Head terms ("cheap louis vuitton") get far more queries than tail terms;
    we draw a per-term base volume from a Pareto-like distribution and apply
    mild weekly seasonality (weekend shopping bump).
    """

    def __init__(self, streams: RandomStreams, base_min: float = 40.0, base_max: float = 4000.0,
                 weekend_boost: float = 1.25):
        self._streams = streams
        self.base_min = base_min
        self.base_max = base_max
        self.weekend_boost = weekend_boost
        self._base: Dict[str, float] = {}

    def base_volume(self, term: str) -> float:
        if term not in self._base:
            rng = self._streams.get(f"qvol:{term}")
            # Pareto tail clipped into [base_min, base_max].
            draw = self.base_min * (rng.paretovariate(1.3))
            self._base[term] = min(self.base_max, draw)
        return self._base[term]

    def volume(self, term: str, day) -> float:
        base = self.base_volume(term)
        weekday = day.to_date().weekday()
        if weekday >= 5:
            return base * self.weekend_boost
        return base
