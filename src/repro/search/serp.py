"""Search-engine result pages."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, NamedTuple, Optional

from repro.search.index import IndexedEntry


class ResultLabel(enum.Enum):
    """Warning labels a result can carry (Section 3.2.1)."""

    NONE = "none"
    #: "This site may be hacked" — clickable, no interstitial.
    HACKED = "hacked"
    #: "This site may harm your computer" — interstitial blocks the click.
    MALWARE = "malware"


class SearchResult(NamedTuple):
    """One organic result on a SERP.

    A NamedTuple rather than a dataclass: the engine materializes up to
    ``serp_size`` of these per (term, day), so construction cost is a
    measurable slice of every study run, and tuple construction is several
    times cheaper than a dataclass ``__init__``.  Results are immutable
    snapshots; nothing downstream ever mutates one.
    """

    rank: int  # 1-based
    url: str
    host: str
    path: str
    label: ResultLabel = ResultLabel.NONE
    score: float = 0.0
    entry: Optional[IndexedEntry] = None

    @property
    def in_top10(self) -> bool:
        return self.rank <= 10


@dataclass
class Serp:
    """The top-k results for a (term, day) query."""

    term: str
    day: object
    results: List[SearchResult]

    def top(self, k: int) -> List[SearchResult]:
        return [r for r in self.results if r.rank <= k]

    def result_at(self, rank: int) -> Optional[SearchResult]:
        for result in self.results:
            if result.rank == rank:
                return result
        return None

    def hosts(self) -> List[str]:
        return [r.host for r in self.results]

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)
