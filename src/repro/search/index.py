"""The search index: per-term candidate sets.

Each term maps to the entries eligible to rank for it.  An entry carries the
engine-visible signals: the hosting site's authority, the page's topical
relevance to the term, and the observed off-page SEO signal (backlink-farm
strength).  The SEO signal is supplied by a callable so campaign effort
schedules can vary it over time without daily index rewrites.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional

from repro.web.sites import Site

#: Time-varying SEO signal: day -> strength in [0, inf).
SeoSignal = Callable[[object], float]


def no_seo_signal(day) -> float:
    return 0.0


@dataclass
class IndexedEntry:
    """One (page, term) candidate in the index."""

    url: str
    host: str
    path: str
    site: Site
    relevance: float
    seo_signal: SeoSignal = no_seo_signal
    #: Day the entry entered the index; entries do not rank before this.
    indexed_on: object = None
    #: How much of the host's authority this page inherits.  Search engines
    #: partially discount deep pages injected into hacked hosts, which is
    #: why doorways interleave with (rather than dominate) legitimate
    #: results.
    authority_factor: float = 1.0

    @property
    def authority(self) -> float:
        return self.site.authority * self.authority_factor

    def __repr__(self) -> str:
        return f"IndexedEntry({self.url!r}, rel={self.relevance:.2f})"


class SearchIndex:
    """Candidate sets per term, with deindexing support."""

    def __init__(self):
        self._by_term: Dict[str, List[IndexedEntry]] = {}
        self._by_host: Dict[str, List[IndexedEntry]] = {}

    def add(self, term: str, entry: IndexedEntry) -> IndexedEntry:
        self._by_term.setdefault(term, []).append(entry)
        self._by_host.setdefault(entry.host, []).append(entry)
        return entry

    def add_page(
        self,
        term: str,
        site: Site,
        path: str,
        relevance: float,
        seo_signal: SeoSignal = no_seo_signal,
        indexed_on=None,
        authority_factor: float = 1.0,
    ) -> IndexedEntry:
        entry = IndexedEntry(
            url=site.url(path),
            host=site.host,
            path=path,
            site=site,
            relevance=relevance,
            seo_signal=seo_signal,
            indexed_on=indexed_on,
            authority_factor=authority_factor,
        )
        return self.add(term, entry)

    def candidates(self, term: str) -> List[IndexedEntry]:
        return self._by_term.get(term, [])

    def terms(self) -> List[str]:
        return sorted(self._by_term)

    def entries_for_host(self, host: str) -> List[IndexedEntry]:
        return self._by_host.get(host, [])

    def remove_host(self, host: str) -> int:
        """Deindex every entry on a host (full removal from the index,
        the stronger of the two search penalties).  Returns count removed."""
        removed = self._by_host.pop(host, [])
        if removed:
            doomed = set(id(e) for e in removed)
            for term, entries in self._by_term.items():
                self._by_term[term] = [e for e in entries if id(e) not in doomed]
        return len(removed)

    def __len__(self) -> int:
        return sum(len(entries) for entries in self._by_term.values())
