"""The search index: per-term candidate sets.

Each term maps to the entries eligible to rank for it.  An entry carries the
engine-visible signals: the hosting site's authority, the page's topical
relevance to the term, and the observed off-page SEO signal (backlink-farm
strength).  The SEO signal is supplied by a callable so campaign effort
schedules can vary it over time without daily index rewrites.

Serving is columnar: :meth:`SearchIndex.columns` materializes a term's
candidates into contiguous NumPy arrays (:class:`TermColumns`) that the
engine scores in bulk.  Columns are cached per term and invalidated by a
per-term version counter that every mutation (:meth:`add`,
:meth:`remove_host`) bumps, so a stale cache can never serve a deindexed —
or worse, a recycled — entry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.util.simtime import SimDate
from repro.web.sites import Site

#: Time-varying SEO signal: day -> strength in [0, inf).
SeoSignal = Callable[[object], float]

#: ``indexed_on`` ordinal stand-in for "always eligible" (predates any day).
ALWAYS_INDEXED = -(2**62)


def no_seo_signal(day) -> float:
    return 0.0


@dataclass
class IndexedEntry:
    """One (page, term) candidate in the index."""

    url: str
    host: str
    path: str
    site: Site
    relevance: float
    seo_signal: SeoSignal = no_seo_signal
    #: Day the entry entered the index; entries do not rank before this.
    indexed_on: object = None
    #: How much of the host's authority this page inherits.  Search engines
    #: partially discount deep pages injected into hacked hosts, which is
    #: why doorways interleave with (rather than dominate) legitimate
    #: results.
    authority_factor: float = 1.0
    #: Stable per-index identity, assigned once by :meth:`SearchIndex.add`.
    #: Unlike ``id()`` it is never recycled, so removal sets keyed on it
    #: cannot alias a dead entry to a newly allocated one.
    entry_key: Optional[int] = None

    @property
    def authority(self) -> float:
        return self.site.authority * self.authority_factor

    def __repr__(self) -> str:
        return f"IndexedEntry({self.url!r}, rel={self.relevance:.2f})"


class TermColumns:
    """Columnar view of one term's candidates, in candidate order.

    Arrays are parallel to :attr:`entries`; the engine combines them into
    scores without touching the entry objects until results are built.
    """

    __slots__ = (
        "entries",
        "authority",
        "relevance",
        "indexed_ord",
        "max_indexed_ord",
        "hosts",
        "urls",
        "paths",
        "host_codes",
        "host_counts",
        "max_host_count",
        "seo_groups",
        "seo_positions",
        "seo_signals",
    )

    def __init__(self, entries: List[IndexedEntry]):
        self.entries: Tuple[IndexedEntry, ...] = tuple(entries)
        n = len(self.entries)
        self.authority = np.fromiter(
            (e.site.authority * e.authority_factor for e in self.entries),
            dtype=np.float64, count=n,
        )
        self.relevance = np.fromiter(
            (e.relevance for e in self.entries), dtype=np.float64, count=n,
        )
        self.indexed_ord = np.fromiter(
            (
                ALWAYS_INDEXED if e.indexed_on is None else SimDate(e.indexed_on).ordinal
                for e in self.entries
            ),
            dtype=np.int64, count=n,
        )
        self.max_indexed_ord = int(self.indexed_ord.max()) if n else ALWAYS_INDEXED
        self.hosts: Tuple[str, ...] = tuple(e.host for e in self.entries)
        self.urls: Tuple[str, ...] = tuple(e.url for e in self.entries)
        self.paths: Tuple[str, ...] = tuple(e.path for e in self.entries)
        #: Hosts as dense integer codes so the engine's per-host result cap
        #: can be applied with array ops; ``max_host_count`` lets it skip
        #: cap handling entirely for terms where no host can exceed it.
        codes: Dict[str, int] = {}
        self.host_codes = np.fromiter(
            (codes.setdefault(h, len(codes)) for h in self.hosts),
            dtype=np.intp, count=n,
        )
        if n:
            counts = np.bincount(self.host_codes)
            self.host_counts = counts[self.host_codes]
            self.max_host_count = int(counts.max())
        else:
            self.host_counts = np.empty(0, dtype=np.intp)
            self.max_host_count = 0
        #: Signals that expose (schedule, quality) structure — every page
        #: of a (campaign, vertical) shares one schedule — are grouped so
        #: serving evaluates each schedule once and broadcasts over the
        #: member qualities; opaque signal callables, and schedules without
        #: a stable ``group_key``, stay on the per-entry fallback path
        #: (``seo_positions``/``seo_signals``).  Grouping is keyed by the
        #: schedule's ``group_key`` — never ``id()``, which CPython recycles
        #: across allocations (the PR 1 stale-cache bug class).
        grouped: Dict[str, Tuple[Callable, List[int], List[float]]] = {}
        generic_pos: List[int] = []
        generic_sig: List[SeoSignal] = []
        for i, e in enumerate(self.entries):
            sig = e.seo_signal
            if sig is no_seo_signal:
                continue
            schedule = getattr(sig, "schedule", None)
            quality = getattr(sig, "quality", None)
            group_key = getattr(schedule, "group_key", None)
            if schedule is not None and quality is not None and group_key is not None:
                group = grouped.get(group_key)
                if group is None:
                    grouped[group_key] = group = (schedule.level, [], [])
                group[1].append(i)
                group[2].append(quality)
            else:
                generic_pos.append(i)
                generic_sig.append(sig)
        # Groups form in first-seen entry order — deterministic, and
        # reordering would change float-accumulation order into the score
        # array, breaking bit-exact golden SERPs.
        # repro: allow-D005 grouped dict fills in stable entry order; sorting would break golden SERPs
        self.seo_groups = tuple(
            (level, np.asarray(pos, dtype=np.intp), np.asarray(q, dtype=np.float64))
            for level, pos, q in grouped.values()
        )
        self.seo_positions = np.asarray(generic_pos, dtype=np.intp)
        self.seo_signals = tuple(generic_sig)

    def __len__(self) -> int:
        return len(self.entries)


class SearchIndex:
    """Candidate sets per term, with deindexing support."""

    def __init__(self):
        self._by_term: Dict[str, List[IndexedEntry]] = {}
        self._by_host: Dict[str, List[IndexedEntry]] = {}
        #: Per-term mutation counters; the columnar cache is keyed on them.
        self._versions: Dict[str, int] = {}
        self._columns: Dict[str, Tuple[int, TermColumns]] = {}
        #: Monotonic source of :attr:`IndexedEntry.entry_key` values; never
        #: reused, unlike ``id()``.
        self._next_entry_key = 0

    def add(self, term: str, entry: IndexedEntry) -> IndexedEntry:
        if entry.entry_key is None:
            entry.entry_key = self._next_entry_key
            self._next_entry_key += 1
        self._by_term.setdefault(term, []).append(entry)
        self._by_host.setdefault(entry.host, []).append(entry)
        self._versions[term] = self._versions.get(term, 0) + 1
        return entry

    def add_page(
        self,
        term: str,
        site: Site,
        path: str,
        relevance: float,
        seo_signal: SeoSignal = no_seo_signal,
        indexed_on=None,
        authority_factor: float = 1.0,
    ) -> IndexedEntry:
        entry = IndexedEntry(
            url=site.url(path),
            host=site.host,
            path=path,
            site=site,
            relevance=relevance,
            seo_signal=seo_signal,
            indexed_on=indexed_on,
            authority_factor=authority_factor,
        )
        return self.add(term, entry)

    def candidates(self, term: str) -> List[IndexedEntry]:
        return self._by_term.get(term, [])

    def columns(self, term: str) -> TermColumns:
        """The term's candidates as contiguous arrays (cached until the
        term's candidate set next mutates)."""
        version = self._versions.get(term, 0)
        cached = self._columns.get(term)
        if cached is not None and cached[0] == version:
            return cached[1]
        columns = TermColumns(self._by_term.get(term, []))
        self._columns[term] = (version, columns)
        return columns

    def version(self, term: str) -> int:
        """Mutation counter for a term (bumped by add/remove)."""
        return self._versions.get(term, 0)

    def terms(self) -> List[str]:
        return sorted(self._by_term)

    def entries_for_host(self, host: str) -> List[IndexedEntry]:
        return self._by_host.get(host, [])

    def remove_host(self, host: str) -> int:
        """Deindex every entry on a host (full removal from the index,
        the stronger of the two search penalties).  Returns count removed."""
        removed = self._by_host.pop(host, [])
        if removed:
            doomed = {e.entry_key for e in removed}
            for term, entries in self._by_term.items():
                kept = [e for e in entries if e.entry_key not in doomed]
                if len(kept) != len(entries):
                    self._by_term[term] = kept
                    self._versions[term] = self._versions.get(term, 0) + 1
        return len(removed)

    def __len__(self) -> int:
        return sum(len(entries) for entries in self._by_term.values())
