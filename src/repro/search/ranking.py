"""Ranking model.

score = w_auth * authority + w_rel * relevance + w_seo * seo_signal(day)
        - penalty(host, day) + noise

Noise is drawn from a per-(term, day) RNG stream so any SERP is a pure
deterministic function of engine state and the date — the simulator's daily
traffic pass and the measurement crawler see byte-identical rankings.

The model captures the two ways doorways outrank legitimate pages
(Section 2): compromised sites *inherit the host's accrued authority*, and
dedicated doorways buy rank with backlink-farm SEO signal.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.util.rng import RandomStreams
from repro.search.index import IndexedEntry


@dataclass
class RankingModel:
    """Weights and noise for the scoring function."""

    w_authority: float = 1.0
    w_relevance: float = 0.8
    w_seo: float = 0.45
    noise_sigma: float = 0.15

    def score(
        self,
        entry: IndexedEntry,
        day,
        noise: float,
        penalty: float = 0.0,
    ) -> float:
        base = (
            self.w_authority * entry.authority
            + self.w_relevance * entry.relevance
            + self.w_seo * entry.seo_signal(day)
        )
        return base - penalty + noise


class NoiseSource:
    """Deterministic per-(term, day) ranking jitter.

    A *fresh* generator state is derived for every (term, day) so serving
    the same SERP twice yields byte-identical rankings — the property that
    lets the traffic pass and the measurement crawler share results.

    The stream is a PCG64 ``standard_normal`` sequence whose 256-bit state
    (state + odd increment) comes straight from the SHA-256 digest of the
    stream path and ``term@ordinal`` — the same derivation discipline as
    :func:`repro.util.rng.derive_seed`, just consuming the whole digest.
    Injecting that state into one persistent :class:`numpy.random.Generator`
    costs ~1.5 µs, an order of magnitude under either Mersenne Twister's
    ``init_by_array`` seeding, which is what makes per-query fresh streams
    affordable on the SERP hot path.  Determinism rests on NumPy's stream-
    compatibility guarantee for named bit generators (NEP 19): PCG64 and
    the ziggurat ``standard_normal`` are version-stable.

    :meth:`batch` (the engine's path) and :meth:`for_serp` (the scalar
    reference) consume the same per-(term, day) state sequentially, so a
    batch of ``k`` equals ``k`` scalar draws bit for bit —
    ``tests/test_search.py`` pins this equivalence.
    """

    def __init__(self, streams: RandomStreams, sigma: float):
        self.sigma = sigma
        self._seed_path = (streams.base_seed, streams.path)
        self._init_state()

    def _init_state(self) -> None:
        base_seed, path = self._seed_path
        # Pre-feed the stream path; per-query hashing is then one copy()
        # plus one update() over "term@ordinal".
        prefix = hashlib.sha256()
        prefix.update(str(base_seed).encode("utf-8"))
        for name in tuple(path) + ("ranking-noise",):
            prefix.update(b"\x00")
            prefix.update(name.encode("utf-8"))
        self._prefix = prefix
        self._pcg = np.random.PCG64(0)
        self._generator = np.random.Generator(self._pcg)
        # The state setter reads values out immediately, so one template
        # dict can be mutated and re-submitted per query.
        self._inner: dict = {"state": 0, "inc": 0}
        self._template: dict = {
            "bit_generator": "PCG64",
            "state": self._inner,
            "has_uint32": 0,
            "uinteger": 0,
        }

    def __getstate__(self) -> dict:
        # hashlib objects can't pickle; every per-(term, day) stream is
        # derived fresh, so (sigma, seed path) fully determines behaviour.
        return {"sigma": self.sigma, "_seed_path": self._seed_path}

    def __setstate__(self, state: dict) -> None:
        self.sigma = state["sigma"]
        self._seed_path = state["_seed_path"]
        self._init_state()

    def _state_for(self, term: str, day) -> dict:
        digest = self._prefix.copy()
        digest.update(b"\x00")
        digest.update(f"{term}@{day.ordinal}".encode("utf-8"))
        raw = digest.digest()
        inner = self._inner
        inner["state"] = int.from_bytes(raw[:16], "big")
        # PCG64 increments must be odd to cover the full period.
        inner["inc"] = int.from_bytes(raw[16:], "big") | 1
        return self._template

    def for_serp(self, term: str, day):
        """A scalar drawer over the (term, day) stream: ``k`` calls yield
        exactly ``batch(term, day, k)``, one value at a time."""
        pcg = np.random.PCG64(0)
        pcg.state = self._state_for(term, day)
        draw = np.random.Generator(pcg).standard_normal
        sigma = self.sigma
        return lambda: sigma * float(draw())

    def batch(self, term: str, day, k: int) -> np.ndarray:
        """``k`` noise values from the fresh (term, day) stream."""
        if k <= 0:
            return np.empty(0, dtype=np.float64)
        self._pcg.state = self._state_for(term, day)
        out = self._generator.standard_normal(k)
        out *= self.sigma
        return out
