"""Ranking model.

score = w_auth * authority + w_rel * relevance + w_seo * seo_signal(day)
        - penalty(host, day) + noise

Noise is drawn from a per-(term, day) RNG stream so any SERP is a pure
deterministic function of engine state and the date — the simulator's daily
traffic pass and the measurement crawler see byte-identical rankings.

The model captures the two ways doorways outrank legitimate pages
(Section 2): compromised sites *inherit the host's accrued authority*, and
dedicated doorways buy rank with backlink-farm SEO signal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.util.rng import RandomStreams
from repro.search.index import IndexedEntry


@dataclass
class RankingModel:
    """Weights and noise for the scoring function."""

    w_authority: float = 1.0
    w_relevance: float = 0.8
    w_seo: float = 0.45
    noise_sigma: float = 0.15

    def score(
        self,
        entry: IndexedEntry,
        day,
        noise: float,
        penalty: float = 0.0,
    ) -> float:
        base = (
            self.w_authority * entry.authority
            + self.w_relevance * entry.relevance
            + self.w_seo * entry.seo_signal(day)
        )
        return base - penalty + noise


class NoiseSource:
    """Deterministic per-(term, day) ranking jitter.

    A *fresh* RNG is derived for every (term, day) so serving the same SERP
    twice yields byte-identical rankings — the property that lets the
    traffic pass and the measurement crawler share results.
    """

    def __init__(self, streams: RandomStreams, sigma: float):
        self._base_seed = streams.base_seed
        self._path = streams.path + ("ranking-noise",)
        self.sigma = sigma

    def fresh_rng(self, term: str, day) -> "random.Random":
        import random

        from repro.util.rng import derive_seed

        seed = derive_seed(self._base_seed, *self._path, f"{term}@{day.ordinal}")
        return random.Random(seed)

    def for_serp(self, term: str, day):
        """Return a gauss() drawer freshly seeded by (term, day)."""
        rng = self.fresh_rng(term, day)
        sigma = self.sigma
        return lambda: rng.gauss(0.0, sigma)
