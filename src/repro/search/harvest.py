"""Keyword harvesting from doorway URLs (Section 4.1.1, first method).

For the 13 KEY verticals the paper built its term sets by finding KEY
doorways, issuing ``site:doorway.com`` queries, and extracting the targeted
search terms from the result URL paths (keyword-friendly URLs like
``/cheap-beats-by-dre-7.html`` encode the term).  This module reproduces
that harvesting step against the simulated engine.
"""

from __future__ import annotations

import re
from typing import Iterable, List, Set

from repro.web.urls import parse_url

_SLUG_PATH_RE = re.compile(r"^/([a-z0-9-]+?)(?:-\d+)*\.html$")
_KEY_QUERY_RE = re.compile(r"(?:^|&)key=([^&]+)")


def term_from_url(url: str) -> str:
    """Recover the targeted search term from a doorway URL.

    Handles both slug paths (``/cheap-uggs-boots-12.html``) and the
    ``?key=cheap+uggs+boots`` form the paper quotes.

    >>> term_from_url("http://d.com/cheap-uggs-boots-12.html")
    'cheap uggs boots'
    >>> term_from_url("http://d.com/?key=cheap+beats+by+dre")
    'cheap beats by dre'
    """
    parsed = parse_url(url)
    match = _KEY_QUERY_RE.search(parsed.query)
    if match:
        return match.group(1).replace("+", " ").strip()
    match = _SLUG_PATH_RE.match(parsed.path)
    if match:
        return match.group(1).replace("-", " ").strip()
    return ""


def harvest_terms_from_host(engine, host: str, day) -> List[str]:
    """Extract the terms a doorway targets via a ``site:`` query."""
    terms: Set[str] = set()
    for url in engine.site_query(host, day):
        term = term_from_url(url)
        if term:
            terms.add(term)
    return sorted(terms)


def harvest_terms_from_hosts(engine, hosts: Iterable[str], day) -> List[str]:
    """Union of harvested terms across several doorways — the raw pool the
    paper sampled its 100 representative terms from."""
    terms: Set[str] = set()
    for host in hosts:
        terms.update(harvest_terms_from_host(engine, host, day))
    return sorted(terms)
