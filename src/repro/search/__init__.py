"""Simulated search engine.

Substitutes for live Google in the paper's methodology: it indexes the
synthetic web, ranks candidates per term per day (authority + relevance +
SEO signal − penalties + noise), serves top-k SERPs, and exposes the two
search-side intervention levers the paper studies — result demotion and the
root-only "hacked" warning label (Section 3.2.1).
"""

from repro.search.query import Vertical, QueryVolumeModel
from repro.search.index import IndexedEntry, SearchIndex
from repro.search.ranking import RankingModel
from repro.search.serp import SearchResult, Serp, ResultLabel
from repro.search.ctr import ClickModel
from repro.search.engine import SearchEngine
from repro.search.harvest import (
    term_from_url,
    harvest_terms_from_host,
    harvest_terms_from_hosts,
)

__all__ = [
    "Vertical",
    "QueryVolumeModel",
    "IndexedEntry",
    "SearchIndex",
    "RankingModel",
    "SearchResult",
    "Serp",
    "ResultLabel",
    "ClickModel",
    "SearchEngine",
    "term_from_url",
    "harvest_terms_from_host",
    "harvest_terms_from_hosts",
]
