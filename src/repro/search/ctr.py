"""Click-through model.

Organic CTR decays steeply with rank; results past the first page still
receive a thin tail of clicks (the paper's MOONKIS example shows top-100
visibility alone sustaining order volume, Section 5.2.1).  Warning labels
scale clicks down: "hacked" deters some users, the malware interstitial
blocks nearly all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.search.serp import ResultLabel, SearchResult

#: Empirical-shape CTR for ranks 1..10 (fractions of queries clicking).
_TOP10_CTR = (0.28, 0.15, 0.10, 0.072, 0.053, 0.040, 0.031, 0.025, 0.021, 0.018)


@dataclass
class ClickModel:
    """CTR by rank with label deterrence multipliers."""

    #: CTR for ranks 11..100 follows tail_base / rank**tail_exponent.
    tail_base: float = 0.35
    tail_exponent: float = 1.45
    label_multipliers: Dict[ResultLabel, float] = field(
        default_factory=lambda: {
            ResultLabel.NONE: 1.0,
            ResultLabel.HACKED: 0.45,  # clickable but offputting
            ResultLabel.MALWARE: 0.02,  # interstitial blocks the visit
        }
    )

    def ctr(self, rank: int) -> float:
        if rank < 1:
            raise ValueError(f"rank must be >= 1, got {rank}")
        if rank <= 10:
            return _TOP10_CTR[rank - 1]
        return self.tail_base / (rank ** self.tail_exponent)

    def expected_clicks(self, result: SearchResult, query_volume: float) -> float:
        multiplier = self.label_multipliers.get(result.label, 1.0)
        return query_volume * self.ctr(result.rank) * multiplier
