"""D007 — module-level state written from executor workers.

The ``n_jobs`` regions (OvR fits in ``classify/linear.py``, CV folds in
``classify/crossval.py``) promise bit-identical results at any thread
count.  That holds only while workers are pure: read shared inputs,
return results, merge in the caller.  A worker writing module-level state
races under threads and silently diverges under a future process pool.

The analysis is module-local: find every callable handed to an
``Executor.submit``/``Executor.map`` call, close over same-module
functions/methods it calls, and flag writes (assignment, augmented
assignment, mutating method calls, ``global`` rebinding) that resolve to
a module-level name not shadowed by a local.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Union

from repro.lint.core import Finding, LintContext, Rule, root_name
from repro.lint.registry import register

_EXECUTOR_NAMES = frozenset({
    "ThreadPoolExecutor", "ProcessPoolExecutor", "Executor",
})

_MUTATING_METHODS = frozenset({
    "append", "extend", "insert", "add", "update", "setdefault",
    "pop", "popitem", "remove", "discard", "clear",
    "appendleft", "extendleft",
})

_Worker = Union[ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda]


def _uses_executor(tree: ast.Module) -> bool:
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom):
            if node.module == "concurrent.futures" and any(
                alias.name in _EXECUTOR_NAMES for alias in node.names
            ):
                return True
        elif isinstance(node, ast.Import):
            if any(alias.name.startswith("concurrent.futures")
                   for alias in node.names):
                return True
    return False


def _module_level_names(tree: ast.Module) -> Set[str]:
    """Names bound to containers (or anything reassignable) at module scope."""
    names: Set[str] = set()
    for stmt in tree.body:
        targets: List[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            targets = [stmt.target]
        for target in targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
            elif isinstance(target, (ast.Tuple, ast.List)):
                names.update(
                    e.id for e in target.elts if isinstance(e, ast.Name)
                )
    return names


def _local_names(func: _Worker) -> Set[str]:
    """Parameters plus locally bound names (shadowing module state)."""
    args = func.args
    locals_: Set[str] = {
        a.arg for a in (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        )
    }
    if args.vararg is not None:
        locals_.add(args.vararg.arg)
    if args.kwarg is not None:
        locals_.add(args.kwarg.arg)
    if isinstance(func, ast.Lambda):
        return locals_
    declared_global: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    locals_.add(target.id)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            if isinstance(node.target, ast.Name):
                locals_.add(node.target.id)
        elif isinstance(node, ast.comprehension):
            if isinstance(node.target, ast.Name):
                locals_.add(node.target.id)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if isinstance(item.optional_vars, ast.Name):
                    locals_.add(item.optional_vars.id)
    return locals_ - declared_global


@register
class ExecutorSharedStateRule(Rule):
    """D007: executor workers mutating module-level names."""

    code = "D007"
    name = "executor-shared-state"
    hint = "make the worker pure: pass inputs in, return results, merge in the caller"
    node_types = ()  # whole-module analysis in end_module

    def end_module(self, tree: ast.Module, ctx: LintContext) -> Iterable[Finding]:
        if not _uses_executor(tree):
            return
        module_names = _module_level_names(tree)
        if not module_names:
            return

        functions: Dict[str, _Worker] = {}
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # Methods and module functions share one namespace here;
                # module-local resolution only needs the name.
                functions.setdefault(node.name, node)

        workers: List[_Worker] = []
        seen: Set[int] = set()

        def enlist(func: Optional[_Worker]) -> None:
            if func is None:
                return
            marker = (func.lineno, func.col_offset)
            if marker in seen:
                return
            seen.add(marker)
            workers.append(func)

        def resolve(expr: ast.AST) -> Optional[_Worker]:
            if isinstance(expr, ast.Lambda):
                return expr
            if isinstance(expr, ast.Name):
                return functions.get(expr.id)
            if isinstance(expr, ast.Attribute):
                return functions.get(expr.attr)
            return None

        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("submit", "map")
                and node.args
            ):
                enlist(resolve(node.args[0]))

        # Close over same-module callees of each worker (fixed point).
        index = 0
        while index < len(workers):
            worker = workers[index]
            index += 1
            for node in ast.walk(worker):
                if isinstance(node, ast.Call):
                    enlist(resolve(node.func))

        for worker in workers:
            yield from self._check_worker(worker, module_names, ctx)

    def _check_worker(
        self, worker: _Worker, module_names: Set[str], ctx: LintContext
    ) -> Iterable[Finding]:
        locals_ = _local_names(worker)
        shared = module_names - locals_
        if not shared:
            return
        label = (
            f"lambda at line {worker.lineno}"
            if isinstance(worker, ast.Lambda)
            else f"{worker.name}()"
        )
        for node in ast.walk(worker):
            name: Optional[str] = None
            action = ""
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    if isinstance(target, (ast.Subscript, ast.Attribute)):
                        candidate = root_name(target)
                        if candidate in shared:
                            name, action = candidate, "writes into"
                            break
                    elif isinstance(target, ast.Name) and target.id in shared \
                            and target.id not in locals_:
                        # Only reachable via an explicit ``global`` (plain
                        # assignment would have made it a local).
                        name, action = target.id, "rebinds global"
                        break
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _MUTATING_METHODS
            ):
                candidate = root_name(node.func.value)
                if candidate in shared:
                    name = candidate
                    action = f"calls .{node.func.attr}() on"
            if name is not None:
                yield Finding(
                    path=ctx.path,
                    line=node.lineno,
                    col=node.col_offset,
                    code=self.code,
                    message=(
                        f"executor worker {label} {action} module-level "
                        f"state {name!r}"
                    ),
                    hint=self.hint,
                )
