"""D001/D002 — RNG discipline.

Every draw in the simulator must come from a named, seed-derived stream
(:class:`repro.util.rng.RandomStreams`) or an explicit NumPy
``Generator(PCG64(seed))``; process-global RNG state makes results depend
on import order, call order across components, and thread interleaving.
"""

from __future__ import annotations

import ast
from typing import Iterable, Set

from repro.lint.core import Finding, LintContext, Rule, dotted_name
from repro.lint.registry import register

#: ``random.<func>`` calls that touch the hidden module-global Mersenne
#: Twister instance.
_GLOBAL_RANDOM_FUNCS = frozenset({
    "betavariate", "choice", "choices", "expovariate", "gammavariate",
    "gauss", "getrandbits", "getstate", "lognormvariate", "normalvariate",
    "paretovariate", "randbytes", "randint", "random", "randrange",
    "sample", "seed", "setstate", "shuffle", "triangular", "uniform",
    "vonmisesvariate", "weibullvariate",
})


class _ImportTracking(Rule):
    """Shared alias bookkeeping for the RNG rules."""

    def begin_module(self, tree: ast.Module, ctx: LintContext) -> None:
        self.random_aliases: Set[str] = set()
        self.numpy_aliases: Set[str] = set()
        self.nprandom_aliases: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    if alias.name == "random":
                        self.random_aliases.add(bound)
                    elif alias.name == "numpy":
                        self.numpy_aliases.add(bound)
                    elif alias.name == "numpy.random":
                        if alias.asname:
                            self.nprandom_aliases.add(alias.asname)
                        else:
                            self.numpy_aliases.add("numpy")
            elif isinstance(node, ast.ImportFrom) and node.module == "numpy":
                for alias in node.names:
                    if alias.name == "random":
                        self.nprandom_aliases.add(alias.asname or "random")


@register
class StdlibRandomRule(_ImportTracking):
    """D001: stdlib ``random`` use outside the RNG discipline modules.

    Three tiers, all reported under one code:

    * module-global draws (``random.random()``, ``random.shuffle``, or any
      ``from random import <func>``) — never acceptable;
    * unseeded constructions (``random.Random()`` with no arguments,
      ``random.SystemRandom``) — nondeterministic by definition;
    * seeded ``random.Random(seed)`` constructed outside
      :mod:`repro.util.rng` — deterministic but bypasses the stream
      registry; suppress with a reason when the seed provably derives from
      the scenario seed.
    """

    code = "D001"
    name = "stdlib-random"
    hint = "draw from a named RandomStreams stream (repro.util.rng)"
    node_types = (ast.Call, ast.ImportFrom)
    exempt_suffixes = ("repro/util/rng.py", "repro/util/randmath.py")

    def visit_node(self, node: ast.AST, ctx: LintContext) -> Iterable[Finding]:
        if isinstance(node, ast.ImportFrom):
            if node.module == "random" and node.level == 0:
                for alias in node.names:
                    if alias.name != "Random":
                        yield self.finding(ctx, node, (
                            f"'from random import {alias.name}' binds the "
                            "process-global RNG"
                        ))
            return
        name = dotted_name(node.func)
        if name is None or "." not in name:
            return
        base, _, attr = name.rpartition(".")
        if base not in self.random_aliases:
            return
        if attr in _GLOBAL_RANDOM_FUNCS:
            yield self.finding(ctx, node, (
                f"call to module-global random.{attr}() (hidden shared "
                "Mersenne Twister state)"
            ))
        elif attr == "SystemRandom":
            yield self.finding(ctx, node, (
                "random.SystemRandom draws from the OS entropy pool and can "
                "never be reproduced"
            ))
        elif attr == "Random":
            if not node.args and not node.keywords:
                yield self.finding(ctx, node, (
                    "unseeded random.Random() — seeds itself from OS entropy"
                ))
            else:
                yield self.finding(ctx, node, (
                    "direct random.Random(seed) construction bypasses the "
                    "RandomStreams registry"
                ))


@register
class NumpyRandomRule(_ImportTracking):
    """D002: legacy/global ``numpy.random`` API.

    Only the explicit-state constructors (``Generator``, ``PCG64``,
    ``PCG64DXSM``, ``SeedSequence``) are allowed; ``np.random.seed``,
    ``np.random.rand`` and friends mutate or read the module-global
    ``RandomState``, and ``default_rng()`` hides the bit-generator choice
    behind a NumPy version default.
    """

    code = "D002"
    name = "numpy-random"
    hint = "use np.random.Generator(np.random.PCG64(seed))"
    node_types = (ast.Call, ast.ImportFrom)

    _ALLOWED = frozenset({"Generator", "PCG64", "PCG64DXSM", "SeedSequence"})

    def visit_node(self, node: ast.AST, ctx: LintContext) -> Iterable[Finding]:
        if isinstance(node, ast.ImportFrom):
            if node.module == "numpy.random" and node.level == 0:
                for alias in node.names:
                    if alias.name not in self._ALLOWED:
                        yield self.finding(ctx, node, (
                            f"'from numpy.random import {alias.name}' binds "
                            "the legacy global-state API"
                        ))
            return
        name = dotted_name(node.func)
        if name is None or "." not in name:
            return
        base, _, attr = name.rpartition(".")
        parts = base.split(".")
        is_np_random = (
            base in self.nprandom_aliases
            or (len(parts) == 2 and parts[0] in self.numpy_aliases
                and parts[1] == "random")
        )
        if is_np_random and attr not in self._ALLOWED:
            yield self.finding(ctx, node, (
                f"np.random.{attr}() uses numpy's module-global RandomState "
                "(or a version-dependent default bit generator)"
            ))
