"""Rule modules; importing this package registers every rule.

One module per hazard family, mirroring the bug classes this codebase has
actually hit (PR 1's ``id()``-recycling cache bug) or is structurally
exposed to (thread-pool fits, seeded-stream discipline):

* :mod:`repro.lint.rules.rng` — D001 stdlib ``random``, D002 ``np.random``
* :mod:`repro.lint.rules.wallclock` — D003 wall-clock reads
* :mod:`repro.lint.rules.identity` — D004 ``id()`` keys/membership
* :mod:`repro.lint.rules.ordering` — D005 unordered iteration -> ordered output
* :mod:`repro.lint.rules.defaults` — D006 mutable default arguments
* :mod:`repro.lint.rules.concurrency` — D007 module state written from pool workers
* :mod:`repro.lint.rules.errors` — D008 swallowed exceptions
* :mod:`repro.lint.rules.retry` — D009 retry discipline (unbounded loops,
  wall-clock backoff)
* :mod:`repro.lint.rules.poolloop` — D010 process pools constructed per
  loop iteration instead of once per run
* :mod:`repro.lint.rules.atomicio` — D011 raw write-mode ``open()``
  instead of the crash-safe ``atomic_write``
"""

from repro.lint.rules import (  # noqa: F401
    atomicio,
    concurrency,
    defaults,
    errors,
    identity,
    ordering,
    poolloop,
    retry,
    rng,
    wallclock,
)
