"""D006 — mutable default arguments.

A mutable default is one shared object across every call; state leaks
between calls that never passed the argument.  In a simulator that's a
cross-scenario contamination channel: run A's leftovers change run B's
draws.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.core import Finding, LintContext, Rule, dotted_name
from repro.lint.registry import register

_MUTABLE_CONSTRUCTORS = frozenset({
    "list", "dict", "set", "bytearray",
    "defaultdict", "OrderedDict", "Counter", "deque",
})


def _is_mutable_default(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set,
                         ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        if name is not None and name.split(".")[-1] in _MUTABLE_CONSTRUCTORS:
            return True
    return False


@register
class MutableDefaultRule(Rule):
    """D006: ``def f(x, acc=[])`` / ``def f(x, cache={})``."""

    code = "D006"
    name = "mutable-default"
    hint = "default to None and create the container inside the function"
    node_types = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)

    def visit_node(self, node: ast.AST, ctx: LintContext) -> Iterable[Finding]:
        label = (
            f"lambda at line {node.lineno}"
            if isinstance(node, ast.Lambda)
            else f"{node.name}()"
        )
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            if _is_mutable_default(default):
                yield Finding(
                    path=ctx.path,
                    line=default.lineno,
                    col=default.col_offset,
                    code=self.code,
                    message=(
                        f"mutable default argument in {label} is shared "
                        "across all calls"
                    ),
                    hint=self.hint,
                )
