"""D003 — wall-clock reads in simulation code.

Simulated time is :class:`repro.util.simtime.SimDate`; reading the host
clock couples results to when (and where) a run happens.  Monotonic
timers used for perf measurement (``perf_counter``, ``monotonic``,
``process_time``) are explicitly allowed — they never feed simulation
state, only the PERF registry.
"""

from __future__ import annotations

import ast
from typing import Iterable, Set

from repro.lint.core import Finding, LintContext, Rule, dotted_name
from repro.lint.registry import register

#: ``time.<func>`` reads of the host clock.
_TIME_FUNCS = frozenset({
    "time", "time_ns", "localtime", "gmtime", "ctime", "asctime",
})

#: Constructor-style reads on datetime/date objects.
_DATETIME_ATTRS = frozenset({"now", "today", "utcnow"})


@register
class WallClockRule(Rule):
    """D003: ``time.time()`` / ``datetime.now()`` / ``date.today()``."""

    code = "D003"
    name = "wall-clock"
    hint = "use SimDate / world.today (repro.util.simtime); perf timing uses perf_counter"
    node_types = (ast.Call, ast.ImportFrom)
    exempt_suffixes = ("repro/util/simtime.py", "repro/util/perf.py")
    #: Observability is the sanctioned wall-clock reader: run manifests
    #: timestamp provenance (created_at), never simulation state.
    exempt_dirs = ("repro/obs",)

    def begin_module(self, tree: ast.Module, ctx: LintContext) -> None:
        self.time_aliases: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "time":
                        self.time_aliases.add(alias.asname or "time")

    def visit_node(self, node: ast.AST, ctx: LintContext) -> Iterable[Finding]:
        if isinstance(node, ast.ImportFrom):
            if node.module == "time" and node.level == 0:
                for alias in node.names:
                    if alias.name in _TIME_FUNCS:
                        yield self.finding(ctx, node, (
                            f"'from time import {alias.name}' imports a "
                            "wall-clock read"
                        ))
            return
        name = dotted_name(node.func)
        if name is None or "." not in name:
            return
        base, _, attr = name.rpartition(".")
        if base in self.time_aliases and attr in _TIME_FUNCS:
            yield self.finding(ctx, node, (
                f"wall-clock read time.{attr}() in simulation code"
            ))
            return
        # datetime.datetime.now(), datetime.now(), date.today(), ...
        if attr in _DATETIME_ATTRS and base.split(".")[-1] in ("datetime", "date"):
            yield self.finding(ctx, node, (
                f"wall-clock read {base}.{attr}() in simulation code"
            ))
