"""D005 — unordered iteration feeding ordered output.

Iterating a ``set`` gives hash order — PYTHONHASHSEED-dependent for
strings, so two runs of the same scenario can disagree.  ``dict.values()``
/ ``.keys()`` are insertion-ordered (deterministic given deterministic
inserts), but a consumer of the returned sequence acquires a silent
dependency on that insertion order; the rule forces each such site to
either sort or document why insertion order is itself stable.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from repro.lint.core import Finding, LintContext, Rule
from repro.lint.registry import register

#: Builtins whose output preserves iteration order.
_ORDERED_SINKS = frozenset({"list", "tuple", "iter", "enumerate", "reversed"})

#: Accumulator methods that make a for-loop an ordered producer.
_ACCUMULATORS = frozenset({"append", "extend", "insert", "appendleft"})


def _unordered_source(node: ast.AST) -> Optional[str]:
    """Describe ``node`` if it iterates in set/view order, else None."""
    if isinstance(node, ast.Call):
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in ("values", "keys")
            and not node.args
            and not node.keywords
        ):
            return f".{func.attr}() view"
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return f"{func.id}()"
    if isinstance(node, ast.Set):
        return "set literal"
    if isinstance(node, ast.SetComp):
        return "set comprehension"
    return None


def _source_of(node: ast.AST) -> Optional[str]:
    """Like :func:`_unordered_source`, also looking through one generator
    or list comprehension (``",".join(f(x) for x in s)``)."""
    direct = _unordered_source(node)
    if direct is not None:
        return direct
    if isinstance(node, (ast.GeneratorExp, ast.ListComp)) and node.generators:
        return _unordered_source(node.generators[0].iter)
    return None


def _inside_sorted(node: ast.AST) -> bool:
    """True when an enclosing expression sorts (or order-insensitively
    reduces) the value before anything order-dependent sees it."""
    current = node
    while True:
        parent = getattr(current, "parent", None)
        if parent is None or isinstance(parent, ast.stmt):
            return False
        if isinstance(parent, ast.Call) and isinstance(parent.func, ast.Name):
            if parent.func.id in ("sorted", "min", "max", "sum", "len", "any", "all"):
                return True
        current = parent


@register
class UnorderedIterationRule(Rule):
    """D005: set / dict-view iteration flowing into ordered output."""

    code = "D005"
    name = "unordered-iteration"
    hint = "wrap the source in sorted(...) or document why insertion order is stable"
    node_types = (ast.Call, ast.ListComp, ast.For)

    def visit_node(self, node: ast.AST, ctx: LintContext) -> Iterable[Finding]:
        if isinstance(node, ast.Call):
            func = node.func
            sink: Optional[str] = None
            if isinstance(func, ast.Name) and func.id in _ORDERED_SINKS:
                sink = f"{func.id}()"
            elif isinstance(func, ast.Attribute) and func.attr == "join":
                sink = "str.join()"
            if sink is None or not node.args:
                return
            source = _source_of(node.args[0])
            if source is not None and not _inside_sorted(node):
                yield self.finding(ctx, node, (
                    f"{sink} over a {source} fixes an unordered iteration "
                    "into ordered output"
                ))
            return
        if isinstance(node, ast.ListComp):
            if not node.generators:
                return
            source = _unordered_source(node.generators[0].iter)
            if source is not None and not _inside_sorted(node):
                yield self.finding(ctx, node, (
                    f"list comprehension over a {source} fixes an unordered "
                    "iteration into ordered output"
                ))
            return
        if isinstance(node, ast.For):
            source = _unordered_source(node.iter)
            if source is None:
                return
            for sub in ast.walk(node):
                accumulates = (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr in _ACCUMULATORS
                ) or isinstance(sub, (ast.Yield, ast.YieldFrom))
                if accumulates:
                    yield self.finding(ctx, node, (
                        f"loop over a {source} accumulates into ordered output"
                    ))
                    return
