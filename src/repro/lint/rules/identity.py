"""D004 — ``id()`` used as a key or membership token.

The bug class PR 1 actually hit: CPython recycles object ids as soon as
the object is collected, so an ``id()``-keyed cache (or an id-set used to
filter later) can silently alias a dead object's key to a newly allocated
one.  Key containers by a stable attribute instead (an entry id assigned
at insertion, a schedule's group key, a host name).
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.core import Finding, LintContext, Rule
from repro.lint.registry import register

#: Mapping/set methods whose first argument is a key/member.
_KEYED_METHODS = frozenset({
    "get", "setdefault", "pop", "add", "discard", "remove",
})


def _is_id_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "id"
        and len(node.args) == 1
        and not node.keywords
    )


def _yields_ids(node: ast.AST) -> bool:
    """An expression producing a stream of ids: ``(id(e) for ...)``,
    ``[id(e) for ...]``, or ``map(id, ...)``."""
    if isinstance(node, (ast.GeneratorExp, ast.ListComp, ast.SetComp)):
        return _is_id_call(node.elt)
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "map"
        and node.args
        and isinstance(node.args[0], ast.Name)
        and node.args[0].id == "id"
    ):
        return True
    return False


@register
class IdentityKeyRule(Rule):
    """D004: ``id(x)`` as dict key, set member, or membership probe."""

    code = "D004"
    name = "id-as-key"
    hint = "key by a stable identity attribute; CPython recycles ids after GC"
    node_types = (
        ast.Subscript, ast.Call, ast.Compare,
        ast.Dict, ast.DictComp, ast.Set, ast.SetComp,
    )

    def visit_node(self, node: ast.AST, ctx: LintContext) -> Iterable[Finding]:
        if isinstance(node, ast.Subscript):
            if _is_id_call(node.slice):
                yield self.finding(ctx, node, "id() used as a subscript key")
            return
        if isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _KEYED_METHODS
                and node.args
                and _is_id_call(node.args[0])
            ):
                yield self.finding(
                    ctx, node, f"id() passed as the key to .{func.attr}()"
                )
            elif (
                isinstance(func, ast.Name)
                and func.id in ("set", "frozenset", "dict")
                and node.args
                and (_is_id_call(node.args[0]) or _yields_ids(node.args[0]))
            ):
                yield self.finding(
                    ctx, node, f"{func.id}() built from id() values"
                )
            return
        if isinstance(node, ast.Compare):
            if _is_id_call(node.left) and any(
                isinstance(op, (ast.In, ast.NotIn)) for op in node.ops
            ):
                yield self.finding(
                    ctx, node, "membership test on id() values"
                )
            return
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if key is not None and _is_id_call(key):
                    yield self.finding(ctx, key, "id() used as a dict-literal key")
            return
        if isinstance(node, ast.DictComp):
            if _is_id_call(node.key):
                yield self.finding(ctx, node, "id() used as a dict-comprehension key")
            return
        if isinstance(node, ast.Set):
            for elt in node.elts:
                if _is_id_call(elt):
                    yield self.finding(ctx, elt, "id() used as a set-literal member")
            return
        if isinstance(node, ast.SetComp):
            if _is_id_call(node.elt):
                yield self.finding(ctx, node, "set comprehension over id() values")
