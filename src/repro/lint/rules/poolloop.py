"""D010 — process-pool construction inside a loop.

The crawl shard pool exists precisely because pool startup is expensive:
a forked worker inherits (or a spawned one rebuilds) a whole world
replica, so constructing a pool *per day* pays that cost hundreds of
times over and erases the parallel speedup.  The sanctioned pattern is
one persistent pool per run, created lazily and reused
(:class:`repro.perf.shardpool.CrawlExecutor`, ``_pool_context()`` in
``analysis/ablations.py``).

The check is lexical: a ``multiprocessing.Pool`` / ``Pool`` /
``ThreadPool`` / ``*PoolExecutor`` construction whose nearest enclosing
statement chain reaches a ``for``/``while`` before leaving the current
function is flagged.  Pools built in helper functions that a loop calls
are out of scope (that is a profiling question, not a lexical one).
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.core import Finding, LintContext, Rule, dotted_name
from repro.lint.registry import register

#: Final attribute names that construct a worker pool.
_POOL_NAMES = frozenset({"Pool", "ThreadPool"})
_POOL_SUFFIX = "PoolExecutor"

_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)
_LOOP_NODES = (ast.For, ast.AsyncFor, ast.While)


@register
class PoolInLoopRule(Rule):
    """D010: a process pool constructed inside a per-day (or any) loop."""

    code = "D010"
    name = "pool-in-loop"
    hint = ("create one persistent pool per run and reuse it across days "
            "(see repro.perf.shardpool.CrawlExecutor)")
    node_types = (ast.Call,)

    def visit_node(self, node: ast.AST, ctx: LintContext) -> Iterable[Finding]:
        name = dotted_name(node.func)
        if name is None:
            return
        last = name.rpartition(".")[2]
        if last not in _POOL_NAMES and not last.endswith(_POOL_SUFFIX):
            return
        parent = getattr(node, "parent", None)
        while parent is not None and not isinstance(parent, _SCOPE_NODES):
            if isinstance(parent, _LOOP_NODES):
                yield self.finding(ctx, node, (
                    f"worker pool {last}(...) constructed inside a loop — "
                    "pool startup (fork/spawn of world replicas) is paid "
                    "every iteration"
                ))
                return
            parent = getattr(parent, "parent", None)
