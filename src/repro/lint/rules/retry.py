"""D009 — retry discipline.

The fault-injection layer (:mod:`repro.faults`) made retrying a fetch a
normal thing for crawler code to do, which creates two new hazards:

* a ``while True`` loop that retries on exception has no attempt bound —
  a persistent injected fault (or a real bug) spins it forever;
* ``time.sleep`` backoff stalls the *host*, not the simulation: backoff
  must accumulate simulated seconds
  (:attr:`repro.faults.retry.ResilientFetcher.simulated_backoff_s`), so a
  chaos run finishes in the same wall time as a clean one.

Unseeded jitter sources are already D001's domain (module-global
``random``); this rule covers the loop shape and the sleep call.  The
sanctioned pattern is a bounded ``for attempt in range(n)`` loop with
capped exponential backoff drawn from a seeded stream — see
:class:`repro.faults.retry.RetryPolicy`.
"""

from __future__ import annotations

import ast
from typing import Iterable, Set

from repro.lint.core import Finding, LintContext, Rule, dotted_name
from repro.lint.registry import register


def _is_constant_true(test: ast.AST) -> bool:
    return isinstance(test, ast.Constant) and bool(test.value)


def _retries_on_exception(loop: ast.While) -> bool:
    """True when the loop body continues (or falls through) from an
    exception handler — the retry-on-error shape."""
    for node in ast.walk(loop):
        if not isinstance(node, ast.ExceptHandler):
            continue
        for stmt in ast.walk(node):
            if isinstance(stmt, (ast.Continue, ast.Pass)):
                return True
    return False


@register
class RetryDisciplineRule(Rule):
    """D009: unbounded ``while True`` retry loops; ``time.sleep`` backoff."""

    code = "D009"
    name = "retry-discipline"
    hint = "bound attempts (for attempt in range(n)) and accumulate simulated backoff seconds"
    node_types = (ast.While, ast.Call, ast.ImportFrom)

    def begin_module(self, tree: ast.Module, ctx: LintContext) -> None:
        self.time_aliases: Set[str] = set()
        self.sleep_aliases: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "time":
                        self.time_aliases.add(alias.asname or "time")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "time" and node.level == 0:
                    for alias in node.names:
                        if alias.name == "sleep":
                            self.sleep_aliases.add(alias.asname or "sleep")

    def visit_node(self, node: ast.AST, ctx: LintContext) -> Iterable[Finding]:
        if isinstance(node, ast.ImportFrom):
            if node.module == "time" and node.level == 0:
                for alias in node.names:
                    if alias.name == "sleep":
                        yield self.finding(ctx, node, (
                            "'from time import sleep' imports wall-clock "
                            "backoff into simulation code"
                        ))
            return
        if isinstance(node, ast.While):
            if _is_constant_true(node.test) and _retries_on_exception(node):
                yield self.finding(ctx, node, (
                    "unbounded 'while True' retry loop — a persistent "
                    "fault spins it forever"
                ))
            return
        name = dotted_name(node.func)
        if name is None:
            return
        if name in self.sleep_aliases:
            yield self.finding(ctx, node, (
                "wall-clock sleep() as retry backoff stalls the host, "
                "not the simulation"
            ))
            return
        if "." in name:
            base, _, attr = name.rpartition(".")
            if base in self.time_aliases and attr == "sleep":
                yield self.finding(ctx, node, (
                    "wall-clock time.sleep() as retry backoff stalls the "
                    "host, not the simulation"
                ))
