"""D011 — atomic artifact writes.

Every artifact this repo emits (psrs.jsonl, tables, BENCH files, trace
exports, checkpoints, disk-cache entries) is a file another process —
CI's ``cmp``, a resumed run, a warm-started cache — will read back and
trust byte-for-byte.  A raw write-mode ``open()`` tears on a crash: the
reader sees a half-written file with a valid name, which is strictly
worse than no file at all (a truncated checkpoint resumes garbage; a
torn BENCH json fails the whole bench session).

The sanctioned writer is :func:`repro.util.atomicio.atomic_write`:
temp file in the target directory, fsync, then ``os.replace`` — readers
see the old complete bytes or the new complete bytes, never a mix.
This rule flags ``open()`` calls whose mode creates or truncates
(``w``/``a``/``x``, and ``+`` update modes); read-mode opens are fine.
``atomicio.py`` itself is exempt — it is the one place allowed to touch
the raw file plumbing.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from repro.lint.core import Finding, LintContext, Rule, dotted_name
from repro.lint.registry import register

_WRITE_CHARS = frozenset("wax+")


def _call_mode(node: ast.Call) -> Optional[str]:
    """The literal mode string of an ``open()`` call, if statically known."""
    mode_node: Optional[ast.AST] = None
    if len(node.args) >= 2:
        mode_node = node.args[1]
    else:
        for keyword in node.keywords:
            if keyword.arg == "mode":
                mode_node = keyword.value
                break
    if mode_node is None:
        return "r"
    if isinstance(mode_node, ast.Constant) and isinstance(mode_node.value, str):
        return mode_node.value
    return None


@register
class AtomicWriteRule(Rule):
    """D011: raw write-mode ``open()`` instead of ``atomic_write``."""

    code = "D011"
    name = "atomic-write"
    hint = (
        "write files through repro.util.atomicio.atomic_write "
        "(temp file + fsync + rename; readers never see a torn file)"
    )
    node_types = (ast.Call,)
    exempt_suffixes = ("repro/util/atomicio.py",)

    def visit_node(self, node: ast.AST, ctx: LintContext) -> Iterable[Finding]:
        if dotted_name(node.func) != "open":
            return
        mode = _call_mode(node)
        if mode is None or not (_WRITE_CHARS & set(mode)):
            return
        yield self.finding(ctx, node, (
            f"raw open(..., {mode!r}) can leave a torn file on a crash — "
            f"write through atomic_write"
        ))
