"""D008 — swallowed exceptions.

The crawler/fetch paths emulate network failure modes with explicit
status codes; a handler that silently eats exceptions converts a real bug
(a malformed URL, a broken parser) into a quiet measurement gap that
skews the study's counts instead of failing the run.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.core import Finding, LintContext, Rule, dotted_name
from repro.lint.registry import register


def _is_noop(stmt: ast.stmt) -> bool:
    if isinstance(stmt, (ast.Pass, ast.Continue)):
        return True
    return (
        isinstance(stmt, ast.Expr)
        and isinstance(stmt.value, ast.Constant)
        and stmt.value.value is Ellipsis
    )


@register
class SwallowedExceptionRule(Rule):
    """D008: ``except:`` anywhere; ``except Exception:`` with a no-op body."""

    code = "D008"
    name = "swallowed-exception"
    hint = "catch the specific error and record the failure (status, counter, log)"
    node_types = (ast.ExceptHandler,)

    def visit_node(self, node: ast.AST, ctx: LintContext) -> Iterable[Finding]:
        if node.type is None:
            yield self.finding(ctx, node, (
                "bare 'except:' swallows every error, including "
                "KeyboardInterrupt and SystemExit"
            ))
            return
        caught = dotted_name(node.type)
        if caught is None:
            return
        if caught.split(".")[-1] in ("Exception", "BaseException") and all(
            _is_noop(stmt) for stmt in node.body
        ):
            yield self.finding(ctx, node, (
                f"'except {caught}: pass' silently swallows errors"
            ))
