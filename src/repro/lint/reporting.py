"""Lint output formats: human text, machine JSON, and summary counts.

``python -m repro lint --format json`` emits one JSON object on stdout
with this schema (stable; version-bumped on breaking change)::

    {
      "version": 1,
      "findings": [            // post-suppression, sorted by (path, line)
        {
          "path": "src/repro/...py",   // posix-form path as linted
          "line": 139,                 // 1-based
          "col": 24,                   // 0-based
          "code": "D004",              // stable rule code (D000 = meta)
          "message": "...",            // one-line description
          "hint": "..."                // one-line fix hint ("" for D000)
        }, ...
      ],
      "summary": {
        "files": 97,                   // .py files linted
        "rules": ["D001", ...],        // codes that ran (--select aware)
        "findings": 0,                 // len(findings)
        "by_rule": {"D004": 2, ...},   // finding count per code (omitted-0)
        "suppressions_used": 12,       // inline waivers that fired
        "suppressions_unused": 0,      // stale waivers (candidates to drop)
        "unused_suppressions": [["src/...py", 41], ...]
      }
    }

``--summary PATH`` writes just the ``summary`` object (plus ``version``)
to a file — the ``BENCH_lint.json`` artifact CI tracks so suppression
creep between PRs shows up as a diff, mirroring the ``BENCH_*.json``
perf baselines.

When the deep pass ran (``--deep``), every format gains a ``deep`` block::

    "deep": {
      "rules": ["D101", ...],
      "findings": 0,
      "by_rule": {},
      "suppressions_used": 10,
      "suppressions_unused": 0,
      "unused_suppressions": [],
      "stats": {             // graph sizes + analyzer cost
        "modules": 144, "functions": 981, "call_edges": 1151, ...
        "cache_hits": 0, "cache_misses": 144,
        "summarize_s": ..., "analyze_s": ..., "total_s": ...
      }
    }
"""

from __future__ import annotations

import json
from typing import List

from repro.lint.core import LintReport


SCHEMA_VERSION = 1


def format_text(report: LintReport, deep=None) -> str:
    """One ``path:line: D00x message`` row per finding, plus a summary line."""
    lines: List[str] = [finding.format_text() for finding in report.findings]
    if deep is not None:
        lines.extend(finding.format_text() for finding in deep.findings)
    lines.append(summary_line(report))
    if deep is not None:
        lines.append(deep_summary_line(deep))
    return "\n".join(lines)


def summary_line(report: LintReport) -> str:
    status = "ok" if report.ok else f"{len(report.findings)} finding(s)"
    extra = ""
    if report.suppressions_unused:
        stale = ", ".join(
            f"{path}:{line}" for path, line in report.unused_suppression_sites
        )
        extra = f", {report.suppressions_unused} unused suppression(s): {stale}"
    return (
        f"repro.lint: {status} in {report.files} file(s) "
        f"({len(report.rule_codes)} rules, "
        f"{report.suppressions_used} suppression(s) used{extra})"
    )


def deep_summary_line(deep) -> str:
    stats = deep.stats
    status = "ok" if deep.ok else f"{len(deep.findings)} finding(s)"
    extra = ""
    if deep.unused_suppression_sites:
        stale = ", ".join(
            f"{path}:{line}" for path, line in deep.unused_suppression_sites
        )
        extra = f", {len(deep.unused_suppression_sites)} unused suppression(s): {stale}"
    return (
        f"repro.lint --deep: {status} "
        f"({len(deep.rule_codes)} rules, {stats.modules} modules, "
        f"{stats.call_edges} call edges, {deep.suppressions_used} "
        f"suppression(s) used, cache {stats.cache_hits} hit / "
        f"{stats.cache_misses} miss, {stats.total_s:.2f}s{extra})"
    )


def summary_dict(report: LintReport, deep=None) -> dict:
    payload = {
        "files": report.files,
        "rules": list(report.rule_codes),
        "findings": len(report.findings),
        "by_rule": report.by_rule,
        "suppressions_used": report.suppressions_used,
        "suppressions_unused": report.suppressions_unused,
        "unused_suppressions": [
            [path, line] for path, line in report.unused_suppression_sites
        ],
    }
    if deep is not None:
        payload["deep"] = deep_dict(deep)
    return payload


def deep_dict(deep) -> dict:
    return {
        "rules": list(deep.rule_codes),
        "findings": len(deep.findings),
        "by_rule": deep.by_rule,
        "suppressions_used": deep.suppressions_used,
        "suppressions_unused": len(deep.unused_suppression_sites),
        "unused_suppressions": [
            [path, line] for path, line in deep.unused_suppression_sites
        ],
        "stats": deep.stats.to_dict(),
    }


def format_json(report: LintReport, deep=None) -> str:
    payload = {
        "version": SCHEMA_VERSION,
        "findings": [finding.to_json() for finding in report.findings],
        "summary": summary_dict(report, deep),
    }
    if deep is not None:
        payload["deep_findings"] = [finding.to_json() for finding in deep.findings]
    return json.dumps(payload, indent=2, sort_keys=False)


def write_summary(report: LintReport, path: str, deep=None) -> None:
    """Write the BENCH_lint.json-style summary-count artifact.

    Like every BENCH writer, the file carries the shared run manifest so
    count diffs are attributable to a commit/host, not guessed at."""
    from repro.obs.manifest import run_manifest

    payload = {"version": SCHEMA_VERSION, "manifest": run_manifest()}
    payload.update(summary_dict(report, deep))
    from repro.util.atomicio import atomic_write

    with atomic_write(path) as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
