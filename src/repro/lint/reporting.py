"""Lint output formats: human text, machine JSON, and summary counts.

``python -m repro lint --format json`` emits one JSON object on stdout
with this schema (stable; version-bumped on breaking change)::

    {
      "version": 1,
      "findings": [            // post-suppression, sorted by (path, line)
        {
          "path": "src/repro/...py",   // posix-form path as linted
          "line": 139,                 // 1-based
          "col": 24,                   // 0-based
          "code": "D004",              // stable rule code (D000 = meta)
          "message": "...",            // one-line description
          "hint": "..."                // one-line fix hint ("" for D000)
        }, ...
      ],
      "summary": {
        "files": 97,                   // .py files linted
        "rules": ["D001", ...],        // codes that ran (--select aware)
        "findings": 0,                 // len(findings)
        "by_rule": {"D004": 2, ...},   // finding count per code (omitted-0)
        "suppressions_used": 12,       // inline waivers that fired
        "suppressions_unused": 0,      // stale waivers (candidates to drop)
        "unused_suppressions": [["src/...py", 41], ...]
      }
    }

``--summary PATH`` writes just the ``summary`` object (plus ``version``)
to a file — the ``BENCH_lint.json`` artifact CI tracks so suppression
creep between PRs shows up as a diff, mirroring the ``BENCH_*.json``
perf baselines.
"""

from __future__ import annotations

import json
from typing import List

from repro.lint.core import LintReport

SCHEMA_VERSION = 1


def format_text(report: LintReport) -> str:
    """One ``path:line: D00x message`` row per finding, plus a summary line."""
    lines: List[str] = [finding.format_text() for finding in report.findings]
    lines.append(summary_line(report))
    return "\n".join(lines)


def summary_line(report: LintReport) -> str:
    status = "ok" if report.ok else f"{len(report.findings)} finding(s)"
    extra = ""
    if report.suppressions_unused:
        stale = ", ".join(
            f"{path}:{line}" for path, line in report.unused_suppression_sites
        )
        extra = f", {report.suppressions_unused} unused suppression(s): {stale}"
    return (
        f"repro.lint: {status} in {report.files} file(s) "
        f"({len(report.rule_codes)} rules, "
        f"{report.suppressions_used} suppression(s) used{extra})"
    )


def summary_dict(report: LintReport) -> dict:
    return {
        "files": report.files,
        "rules": list(report.rule_codes),
        "findings": len(report.findings),
        "by_rule": report.by_rule,
        "suppressions_used": report.suppressions_used,
        "suppressions_unused": report.suppressions_unused,
        "unused_suppressions": [
            [path, line] for path, line in report.unused_suppression_sites
        ],
    }


def format_json(report: LintReport) -> str:
    payload = {
        "version": SCHEMA_VERSION,
        "findings": [finding.to_json() for finding in report.findings],
        "summary": summary_dict(report),
    }
    return json.dumps(payload, indent=2, sort_keys=False)


def write_summary(report: LintReport, path: str) -> None:
    """Write the BENCH_lint.json-style summary-count artifact.

    Like every BENCH writer, the file carries the shared run manifest so
    count diffs are attributable to a commit/host, not guessed at."""
    from repro.obs.manifest import run_manifest

    payload = {"version": SCHEMA_VERSION, "manifest": run_manifest()}
    payload.update(summary_dict(report))
    from repro.util.atomicio import atomic_write

    with atomic_write(path) as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
