"""Visitor core for ``repro.lint``.

The analyzer walks each file's AST once, dispatching every node to the
rules that registered interest in its type (:attr:`Rule.node_types`).
During the walk each child node gets a ``parent`` backlink so rules can
climb enclosing expressions (e.g., D005's ``sorted(...)`` guard).  Rules
needing a whole-module view (D007's executor/worker analysis) do their
work in :meth:`Rule.end_module` instead.

Findings can be waived inline::

    grouped[key] = ...  # repro: allow-D004 keys are live for the whole pass

A suppression must name the rule code (``allow-D004`` or a comma list
``allow-D004,D005``) and carry a written reason; a reason-less
suppression does not suppress anything and is itself reported under the
``D000`` meta-code.  A suppression applies to findings on its own line or,
when written as a standalone comment, on the line directly below it.
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Meta-code for problems with the lint pass itself (syntax errors in a
#: linted file, malformed suppressions) — never selectable, never waivable.
META_CODE = "D000"


@dataclass(frozen=True)
class Finding:
    """One diagnostic: a rule violation at a specific source location."""

    path: str
    line: int
    col: int
    code: str
    message: str
    hint: str = ""

    def format_text(self) -> str:
        text = f"{self.path}:{self.line}: {self.code} {self.message}"
        if self.hint:
            text += f" [fix: {self.hint}]"
        return text

    def to_json(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
            "hint": self.hint,
        }


_SUPPRESSION_RE = re.compile(
    r"#\s*repro:\s*allow-(?P<codes>D\d{3}(?:\s*,\s*D\d{3})*)\s*(?P<reason>.*?)\s*$"
)


@dataclass
class Suppression:
    """A parsed ``# repro: allow-D00x <reason>`` comment."""

    path: str
    line: int
    codes: Tuple[str, ...]
    reason: str
    standalone: bool  #: comment-only line (waives the line below too)
    used: bool = False

    def covers(self, finding: Finding) -> bool:
        if finding.code not in self.codes:
            return False
        if finding.line == self.line:
            return True
        return self.standalone and finding.line == self.line + 1


class LintContext:
    """Per-file state handed to every rule callback."""

    def __init__(self, path: str, source: str, tree: ast.Module):
        self.path = path
        self.source = source
        self.tree = tree
        self.lines = source.splitlines()

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted_name(node.value)
        if base is not None:
            return f"{base}.{node.attr}"
    return None


def root_name(node: ast.AST) -> Optional[str]:
    """The leftmost Name of an Attribute/Subscript chain (``a`` in
    ``a.b[k].c``), else None."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


class Rule:
    """Base class for one lint rule.

    Subclasses set :attr:`code` (stable ``D00x`` identifier), a short
    :attr:`name`, a one-line fix :attr:`hint`, the AST :attr:`node_types`
    they want dispatched, and optionally :attr:`exempt_suffixes` — path
    suffixes (posix form) where the rule does not apply (e.g., D001 is
    exempt inside the RNG discipline modules themselves) — and
    :attr:`exempt_dirs` — sanctioned directories (posix path fragments
    matched on whole components, e.g. ``repro/obs``) whose every file the
    rule skips.
    """

    code: str = META_CODE
    name: str = ""
    hint: str = ""
    node_types: Tuple[type, ...] = ()
    exempt_suffixes: Tuple[str, ...] = ()
    exempt_dirs: Tuple[str, ...] = ()

    def applies_to(self, path: str) -> bool:
        posix = path.replace(os.sep, "/")
        if any(posix.endswith(suffix) for suffix in self.exempt_suffixes):
            return False
        anchored = "/" + posix
        return not any(
            f"/{directory.strip('/')}/" in anchored
            for directory in self.exempt_dirs
        )

    def begin_module(self, tree: ast.Module, ctx: LintContext) -> None:
        """Called before the walk; collect module-level facts here."""

    def visit_node(self, node: ast.AST, ctx: LintContext) -> Iterable[Finding]:
        return ()

    def end_module(self, tree: ast.Module, ctx: LintContext) -> Iterable[Finding]:
        return ()

    def finding(self, ctx: LintContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=self.code,
            message=message,
            hint=self.hint,
        )


def _collect_suppressions(path: str, source: str) -> Tuple[List[Suppression], List[Finding]]:
    suppressions: List[Suppression] = []
    problems: List[Finding] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [
            (tok.start[0], tok.start[1], tok.string)
            for tok in tokens
            if tok.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError):
        return suppressions, problems
    lines = source.splitlines()
    for lineno, col, text in comments:
        match = _SUPPRESSION_RE.match(text)
        if match is None:
            continue
        codes = tuple(
            code.strip() for code in match.group("codes").split(",")
        )
        reason = match.group("reason")
        standalone = lines[lineno - 1][:col].strip() == ""
        if not reason:
            problems.append(Finding(
                path=path, line=lineno, col=col, code=META_CODE,
                message=(
                    f"suppression for {','.join(codes)} has no reason; "
                    "write '# repro: allow-D00x <why this is safe>'"
                ),
            ))
            continue
        suppressions.append(Suppression(
            path=path, line=lineno, codes=codes, reason=reason,
            standalone=standalone,
        ))
    return suppressions, problems


def _run_rules(rules: Sequence[Rule], ctx: LintContext) -> List[Finding]:
    dispatch: Dict[type, List[Rule]] = {}
    for rule in rules:
        rule.begin_module(ctx.tree, ctx)
        for node_type in rule.node_types:
            dispatch.setdefault(node_type, []).append(rule)
    findings: List[Finding] = []
    stack: List[ast.AST] = [ctx.tree]
    while stack:
        node = stack.pop()
        for rule in dispatch.get(type(node), ()):
            findings.extend(rule.visit_node(node, ctx))
        for child in ast.iter_child_nodes(node):
            child.parent = node  # backlink for ancestor-sensitive rules
            stack.append(child)
    for rule in rules:
        findings.extend(rule.end_module(ctx.tree, ctx))
    return findings


@dataclass
class FileResult:
    path: str
    findings: List[Finding] = field(default_factory=list)
    suppressions: List[Suppression] = field(default_factory=list)


def lint_file(path: str, rules: Sequence[Rule], display_path: Optional[str] = None) -> FileResult:
    """Lint one file: parse, walk, apply suppressions."""
    shown = (display_path or path).replace(os.sep, "/")
    result = FileResult(path=shown)
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        result.findings.append(Finding(
            path=shown, line=exc.lineno or 1, col=exc.offset or 0,
            code=META_CODE, message=f"syntax error: {exc.msg}",
        ))
        return result
    suppressions, problems = _collect_suppressions(shown, source)
    result.suppressions = suppressions
    applicable = [rule for rule in rules if rule.applies_to(shown)]
    ctx = LintContext(shown, source, tree)
    raw = _run_rules(applicable, ctx)
    kept: List[Finding] = []
    for finding in raw:
        waiver = next((s for s in suppressions if s.covers(finding)), None)
        if waiver is not None:
            waiver.used = True
        else:
            kept.append(finding)
    kept.extend(problems)
    kept.sort(key=lambda f: (f.line, f.col, f.code))
    result.findings = kept
    return result


def discover_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            found.append(path)
            continue
        if not os.path.isdir(path):
            raise FileNotFoundError(f"no such file or directory: {path!r}")
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(
                d for d in dirnames if not d.startswith(".") and d != "__pycache__"
            )
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    found.append(os.path.join(dirpath, filename))
    return sorted(dict.fromkeys(found))


@dataclass
class LintReport:
    """Aggregated outcome of one lint run (see :mod:`repro.lint.reporting`
    for the serialized schema)."""

    findings: List[Finding]
    files: int
    rule_codes: List[str]
    suppressions_used: int
    suppressions_unused: int
    unused_suppression_sites: List[Tuple[str, int]]

    @property
    def by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.code] = counts.get(finding.code, 0) + 1
        return counts

    @property
    def ok(self) -> bool:
        return not self.findings


def lint_paths(
    paths: Sequence[str],
    rules: Sequence[Rule],
    root: Optional[str] = None,
) -> LintReport:
    """Lint every ``.py`` file under ``paths`` with the given rules."""
    files = discover_files(paths)
    base = root or os.getcwd()
    findings: List[Finding] = []
    used = 0
    unused_sites: List[Tuple[str, int]] = []
    active_codes = {rule.code for rule in rules}
    for path in files:
        display = os.path.relpath(path, base) if os.path.isabs(path) else path
        result = lint_file(path, rules, display_path=display)
        findings.extend(result.findings)
        for suppression in result.suppressions:
            if suppression.used:
                used += 1
            elif any(code in active_codes for code in suppression.codes):
                # A waiver is only "unused" when a rule it names actually
                # ran: deep-pass (D1xx) waivers are invisible to a shallow
                # run, and `--select D004` must not flag allow-D005 sites.
                unused_sites.append((result.path, suppression.line))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return LintReport(
        findings=findings,
        files=len(files),
        rule_codes=[rule.code for rule in rules],
        suppressions_used=used,
        suppressions_unused=len(unused_sites),
        unused_suppression_sites=unused_sites,
    )
