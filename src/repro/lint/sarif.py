"""SARIF 2.1.0 output for ``repro lint`` (shallow and deep findings).

SARIF is the interchange format CI code-scanning UIs ingest; emitting it
lets the lint-deep job upload one artifact that renders findings inline
on the PR diff.  Only the core subset is produced: tool driver with rule
metadata, one result per finding with a physical location.
"""

from __future__ import annotations

import json
from typing import Iterable, List, Sequence

from repro.lint.core import Finding

SARIF_VERSION = "2.1.0"
_SCHEMA_URI = "https://json.schemastore.org/sarif-2.1.0.json"


def _rule_entry(rule) -> dict:
    entry = {
        "id": rule.code,
        "name": rule.name or rule.code,
        "shortDescription": {"text": rule.name or rule.code},
    }
    if rule.hint:
        entry["help"] = {"text": rule.hint}
    return entry


def sarif_payload(findings: Sequence[Finding], rules: Iterable) -> dict:
    """SARIF run object for a finished lint pass.

    ``rules`` is any iterable of objects with ``code``/``name``/``hint``
    (shallow :class:`~repro.lint.core.Rule` and flow rules both fit)."""
    seen = set()
    rule_entries: List[dict] = []
    for rule in rules:
        if rule.code in seen:
            continue
        seen.add(rule.code)
        rule_entries.append(_rule_entry(rule))
    rule_entries.sort(key=lambda r: r["id"])
    index_of = {entry["id"]: i for i, entry in enumerate(rule_entries)}

    results = []
    for finding in findings:
        result = {
            "ruleId": finding.code,
            "level": "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": finding.path},
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.col + 1,
                        },
                    }
                }
            ],
        }
        if finding.code in index_of:
            result["ruleIndex"] = index_of[finding.code]
        results.append(result)

    return {
        "$schema": _SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "rules": rule_entries,
                    }
                },
                "results": results,
            }
        ],
    }


def format_sarif(findings: Sequence[Finding], rules: Iterable) -> str:
    return json.dumps(sarif_payload(findings, rules), indent=2, sort_keys=False)
