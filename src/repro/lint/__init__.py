"""``repro.lint`` — AST-based determinism & concurrency-safety analyzer.

The reproduction's claims rest on bit-exact reruns (golden SERPs,
``n_jobs``-independent fits); this package enforces the hazard classes the
codebase has actually hit — most notably PR 1's ``id()``-recycling cache
bug — mechanically instead of by review.  Run it with::

    python -m repro lint src/ benchmarks/
    python -m repro lint --select D004,D005 --format json src/

Rules (each suppressible inline with ``# repro: allow-D00x <reason>``):

======  ==========================================================
D001    stdlib ``random`` use outside ``util/rng.py``/``util/randmath.py``
D002    ``np.random`` global-state API (only Generator/PCG64 allowed)
D003    wall-clock reads (``time.time``, ``datetime.now``) in simulation code
D004    ``id()`` as a dict key / set member (the PR 1 staleness class)
D005    set / dict-view iteration feeding ordered output without ``sorted``
D006    mutable default arguments
D007    module-level state written from ``ThreadPoolExecutor`` workers
D008    bare ``except:`` / ``except Exception: pass``
======  ==========================================================
"""

from repro.lint.core import (
    Finding,
    LintReport,
    Rule,
    discover_files,
    lint_file,
    lint_paths,
)
from repro.lint.registry import all_rules, register, registered_codes, select_rules
from repro.lint.reporting import (
    format_json,
    format_text,
    summary_dict,
    summary_line,
    write_summary,
)

__all__ = [
    "Finding",
    "LintReport",
    "Rule",
    "all_rules",
    "discover_files",
    "format_json",
    "format_text",
    "lint_file",
    "lint_paths",
    "register",
    "registered_codes",
    "select_rules",
    "summary_dict",
    "summary_line",
    "write_summary",
]
