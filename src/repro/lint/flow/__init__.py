"""``repro.lint.flow`` — whole-program shard-safety & determinism analysis.

The per-file rules (D001–D010) are syntactic: each looks at one module's
AST and cannot see that a worker task calls, three modules away, a helper
that bumps a parent-only counter.  PR 6 made exactly those whole-program
contracts load-bearing — byte-identical artifacts at any ``--jobs`` level
hold only while every worker effect is a seq-tagged op and no
nondeterminism source leaks into the merge path.  This package checks
them mechanically:

1. a **module import graph** and a **call graph** over the analyzed
   package (direct calls, method resolution through a lightweight
   class/attribute binder, callables passed as arguments);
2. an **effect-inference pass** that computes per-function effect sets
   (mutates-module-global, mutates-self/parameter, wall-clock reads,
   raw RNG sources, ``id()`` identity, filesystem IO, unordered set
   iteration) and propagates them transitively along call edges with
   fixpoint iteration;
3. interprocedural rules on top:

======  ===============================================================
D101    worker-context purity: code reachable from a shard-pool worker
        entry point must not mutate parent-owned module state
D102    nondeterminism taint (wallclock / raw RNG / ``id()`` / unordered
        iteration) reaching an artifact writer
D103    unordered iteration reachable from a canonical seq-ordered
        merge root (``# repro: merge-root``)
D104    declared effect contracts (``# repro: effects=pure`` /
        ``effects=worker-safe``) verified against inferred effects
D105    cross-module aliasing of one seeded RNG stream
======  ===============================================================

Functions may declare contracts inline::

    # repro: effects=worker-safe
    def add(self, elapsed):
        ...

Declared contracts are *trusted* during propagation (assume–guarantee:
a ``pure``/``worker-safe`` callee contributes no effects to its callers)
and independently *verified* by D104, so a wrong declaration surfaces at
the declaration site instead of poisoning every caller.  Findings are
waived with the same ``# repro: allow-D10x <reason>`` machinery the
shallow rules use.

Run it as ``python -m repro lint --deep`` (``--graph`` dumps the module/
call graph as JSON, ``--format sarif`` emits SARIF 2.1.0).  Warm runs are
incremental: per-module summaries are cached under a BLAKE2 content
digest (same scheme as :mod:`repro.perf.cache`), so only edited modules
re-summarize.
"""

from repro.lint.flow.analysis import (
    FlowReport,
    FlowStats,
    analyze_paths,
    deep_lint,
    graph_dump,
)
from repro.lint.flow.rules import all_flow_rules, flow_rule_codes, register_flow

__all__ = [
    "FlowReport",
    "FlowStats",
    "all_flow_rules",
    "analyze_paths",
    "deep_lint",
    "flow_rule_codes",
    "graph_dump",
    "register_flow",
]
