"""Incremental analysis cache: per-module summaries keyed by content digest.

Same addressing discipline as :mod:`repro.perf.cache` — the key is a
BLAKE2b digest of the module's source text (plus a format-version salt),
so an edited file hashes to a new key and a stale summary can never be
served; no invalidation protocol beyond the hash.  Summaries are stored
one JSON file per digest under the cache directory, written through
:func:`repro.util.atomicio.atomic_write` so a killed run never leaves a
torn entry.

Only the *summarize* stage is cached.  Linking, effect inference, and
rule evaluation are whole-program and re-run every time — they are cheap
next to parsing, and caching them would make results depend on more than
one file's content.
"""

from __future__ import annotations

import json
import os
from hashlib import blake2b

from repro.lint.flow.summarize import ModuleSummary, summarize_module
from repro.util.atomicio import atomic_write

#: Bump when the summary format or extraction logic changes: the salt is
#: part of every key, so old cache entries simply stop matching.
SUMMARY_VERSION = 1

#: Default cache location, relative to the invocation directory.
DEFAULT_CACHE_DIR = ".repro_flow_cache"


def source_digest(module: str, path: str, source: str) -> str:
    """Hex BLAKE2b digest addressing one module's summary.

    Module name and (relative) path participate in the key so identical
    source at two locations cannot alias one entry."""
    payload = f"v{SUMMARY_VERSION}\x00{module}\x00{path}\x00{source}"
    return blake2b(payload.encode("utf-8", "surrogatepass"), digest_size=16).hexdigest()


class AnalysisCache:
    """Digest-addressed store of :class:`ModuleSummary` JSON blobs."""

    def __init__(self, cache_dir: str | None):
        self.cache_dir = cache_dir
        self.hits = 0
        self.misses = 0

    @property
    def enabled(self) -> bool:
        return self.cache_dir is not None

    def _entry_path(self, digest: str) -> str:
        return os.path.join(self.cache_dir, f"{digest}.json")

    def load(self, digest: str) -> ModuleSummary | None:
        if not self.enabled:
            return None
        path = self._entry_path(digest)
        try:
            with open(path, encoding="utf-8") as handle:
                data = json.load(handle)
            return ModuleSummary.from_dict(data)
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def store(self, digest: str, summary: ModuleSummary) -> None:
        if not self.enabled:
            return
        os.makedirs(self.cache_dir, exist_ok=True)
        with atomic_write(self._entry_path(digest)) as handle:
            json.dump(summary.to_dict(), handle, sort_keys=True)

    def summarize(self, module: str, path: str, source: str) -> ModuleSummary:
        """Summarize through the cache: hit returns the stored summary."""
        digest = source_digest(module, path, source)
        cached = self.load(digest)
        if cached is not None and cached.module == module:
            self.hits += 1
            return cached
        summary = summarize_module(module, path, source)
        self.store(digest, summary)
        self.misses += 1
        return summary
