"""Cross-module resolution: import graph + call graph over summaries.

This is the only place with a whole-program view.  It links the
module-local :class:`~repro.lint.flow.summarize.ModuleSummary` records
into:

* an **import graph** (internal modules only);
* a **call graph** of :class:`Edge` records — direct calls, constructor
  calls (to ``__init__``), method calls resolved through the class /
  attribute binder (with base-class walking), and ``may-call`` edges for
  internal callables passed as arguments (a task function handed to
  ``apply_async`` will be *executed* by pool machinery we never see, so
  passing it counts as calling it);
* **worker roots** — functions dispatched via pool spawn methods
  (``apply_async``/``submit``/``map*``) or a ``Pool(initializer=...)``
  keyword, plus anything marked ``# repro: worker-entry``;
* **RNG stream sites** — ``.get("<literal>")`` calls whose receiver
  provably descends from a ``RandomStreams`` root, grouped by
  (namespace, stream name) for D105.

Resolution is best-effort and conservative: an unresolved call produces
no edge (counted in ``unresolved_calls``), never a guess.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lint.flow.summarize import ModuleSummary

#: Pool dispatch methods whose first callable argument runs in a worker.
SPAWN_METHODS = frozenset(
    ("apply_async", "apply", "submit", "map", "map_async", "starmap", "imap", "imap_unordered")
)

#: Parameter names assumed to carry the seeded RandomStreams root.
_STREAMS_PARAMS = frozenset(("streams", "rng_streams"))

_MAX_RESOLVE_DEPTH = 12


@dataclass
class Edge:
    caller: str  #: fully-qualified caller, e.g. "repro.perf.shardpool._run_task"
    callee: str
    line: int  #: line in the *caller's* module
    module: str  #: caller's module (dotted)
    recv_global: str | None = None  #: "defmodule:NAME" when the receiver is a module-level instance
    kind: str = "call"  #: "call" | "may-call" | "spawn"

    def to_dict(self) -> dict:
        return {
            "caller": self.caller,
            "callee": self.callee,
            "line": self.line,
            "module": self.module,
            "recv_global": self.recv_global,
            "kind": self.kind,
        }


@dataclass
class StreamSite:
    module: str
    qual: str  #: function containing the call
    line: int
    namespace: str  #: "/".join(child path), "" for the root
    name: str  #: the stream name literal

    def to_dict(self) -> dict:
        return {
            "module": self.module,
            "qual": self.qual,
            "line": self.line,
            "namespace": self.namespace,
            "name": self.name,
        }


@dataclass
class Program:
    """Linked whole-program view over a set of module summaries."""

    summaries: dict  # module -> ModuleSummary
    functions: dict = field(default_factory=dict)  # qual -> (module, FunctionSummary)
    classes: dict = field(default_factory=dict)  # qual -> (module, ClassSummary)
    import_edges: dict = field(default_factory=dict)  # module -> sorted [module]
    edges: list = field(default_factory=list)
    worker_roots: list = field(default_factory=list)  # sorted quals
    merge_roots: list = field(default_factory=list)
    stream_sites: list = field(default_factory=list)
    unresolved_calls: int = 0

    def path_of(self, module: str) -> str:
        return self.summaries[module].path

    def edges_from(self, qual: str) -> list:
        return self._by_caller.get(qual, [])

    def function(self, qual: str):
        entry = self.functions.get(qual)
        return entry[1] if entry else None

    def module_of(self, qual: str) -> str | None:
        entry = self.functions.get(qual)
        return entry[0] if entry else None

    def finalize(self) -> None:
        self._by_caller: dict[str, list] = {}
        for edge in self.edges:
            self._by_caller.setdefault(edge.caller, []).append(edge)
        self.worker_roots = sorted(set(self.worker_roots))
        self.merge_roots = sorted(set(self.merge_roots))


def link(summaries: dict) -> Program:
    """Build the linked :class:`Program` from per-module summaries."""
    program = Program(summaries=summaries)
    linker = _Linker(program)
    linker.run()
    program.finalize()
    return program


class _Linker:
    def __init__(self, program: Program):
        self.program = program
        self.summaries = program.summaries

    # -- indexing -----------------------------------------------------------

    def run(self) -> None:
        program = self.program
        for module, summary in sorted(self.summaries.items()):
            for qual, fn in summary.functions.items():
                program.functions[f"{module}.{qual}"] = (module, fn)
                if fn.merge_root:
                    program.merge_roots.append(f"{module}.{qual}")
                if fn.worker_entry:
                    program.worker_roots.append(f"{module}.{qual}")
            for name, cls in summary.classes.items():
                program.classes[f"{module}.{name}"] = (module, cls)
            imported = set()
            for info in summary.imports.values():
                target = info["module"]
                if target in self.summaries and target != module:
                    imported.add(target)
                elif info["kind"] == "object":
                    # "from repro.perf import shardpool" style
                    sub = f"{target}.{info['name']}"
                    if sub in self.summaries and sub != module:
                        imported.add(sub)
            program.import_edges[module] = sorted(imported)

        for module, summary in sorted(self.summaries.items()):
            for qual in sorted(summary.functions):
                self._link_function(module, summary, qual)

    # -- name resolution ----------------------------------------------------

    def _resolve_name(self, module: str, name: str, depth: int = 0):
        """Resolve a bare name in a module's namespace.

        Returns ("func", qual) | ("class", qual) | ("binding", module, name)
        | ("module", dotted) | None.
        """
        if depth > _MAX_RESOLVE_DEPTH:
            return None
        summary = self.summaries.get(module)
        if summary is None:
            return None
        if name in summary.functions:
            return ("func", f"{module}.{name}")
        if name in summary.classes:
            return ("class", f"{module}.{name}")
        if name in summary.bindings:
            return ("binding", module, name)
        info = summary.imports.get(name)
        if info is None:
            # Package attribute access: repro.perf -> repro.perf.shardpool.
            if f"{module}.{name}" in self.summaries:
                return ("module", f"{module}.{name}")
            return None
        if info["kind"] == "module":
            return ("module", info["module"])
        target_module = info["module"]
        if target_module in self.summaries:
            resolved = self._resolve_name(target_module, info["name"], depth + 1)
            if resolved is not None:
                return resolved
            sub = f"{target_module}.{info['name']}"
            if sub in self.summaries:
                return ("module", sub)
        return None

    def _lookup_method(self, class_qual: str, method: str, depth: int = 0) -> str | None:
        """Find ``method`` on a class or its (internal) bases."""
        if depth > _MAX_RESOLVE_DEPTH:
            return None
        entry = self.program.classes.get(class_qual)
        if entry is None:
            return None
        module, cls = entry
        if method in cls.methods:
            return f"{module}.{cls.name}.{method}"
        for base in cls.bases:
            resolved = self._resolve_dotted_target(module, base)
            if resolved is not None and resolved[0] == "class":
                found = self._lookup_method(resolved[1], method, depth + 1)
                if found is not None:
                    return found
        return None

    def _resolve_dotted_target(self, module: str, dotted: str):
        """Resolve a dotted chain to ("func"|"class", qual) or
        ("binding", module, name) or None."""
        parts = dotted.split(".")
        current = self._resolve_name(module, parts[0])
        for part in parts[1:]:
            if current is None:
                return None
            kind = current[0]
            if kind == "module":
                current = self._resolve_name(current[1], part)
            elif kind == "class":
                found = self._lookup_method(current[1], part)
                current = ("func", found) if found else None
            elif kind == "binding":
                # attribute access on a module-global instance
                qual = self._method_on_binding(current[1], current[2], part)
                current = ("func", qual) if qual else None
            else:
                return None
        return current

    def _binding_class(self, module: str, name: str, depth: int = 0) -> str | None:
        """Class qual of a module-level instance binding, if derivable."""
        if depth > _MAX_RESOLVE_DEPTH:
            return None
        summary = self.summaries.get(module)
        if summary is None:
            return None
        info = summary.bindings.get(name)
        if info is None:
            return None
        return self._class_of_bindinfo(module, info, depth)

    def _class_of_bindinfo(self, module: str, info: dict, depth: int = 0) -> str | None:
        if depth > _MAX_RESOLVE_DEPTH or not isinstance(info, dict):
            return None
        kind = info.get("kind")
        if kind == "construct":
            resolved = self._resolve_dotted_target(module, info["name"])
            if resolved is not None and resolved[0] == "class":
                return resolved[1]
            return None
        if kind == "name-ref":
            return self._binding_class(module, info["name"], depth + 1)
        return None

    def _method_on_binding(self, module: str, name: str, method: str) -> str | None:
        class_qual = self._binding_class(module, name)
        if class_qual is None:
            return None
        return self._lookup_method(class_qual, method)

    # -- streams ------------------------------------------------------------

    def _streams_base(self, module: str, info: dict, depth: int = 0):
        """(is_streams, namespace_path | None) for a receiver bind info."""
        if depth > _MAX_RESOLVE_DEPTH or not isinstance(info, dict):
            return (False, None)
        kind = info.get("kind")
        if kind == "construct":
            if info["name"].split(".")[-1] == "RandomStreams":
                return (True, [])
            resolved = self._resolve_dotted_target(module, info["name"])
            if (
                resolved is not None
                and resolved[0] == "class"
                and resolved[1].split(".")[-1] == "RandomStreams"
            ):
                return (True, [])
            return (False, None)
        if kind == "param":
            if info.get("name") in _STREAMS_PARAMS:
                return (True, [])
            return (False, None)
        if kind == "name-ref":
            summary = self.summaries.get(module)
            if summary is not None and info["name"] in summary.bindings:
                return self._streams_base(module, summary.bindings[info["name"]], depth + 1)
            return (False, None)
        if kind == "self-attr":
            attr_info = self._self_attr_info(module, info)
            if attr_info is not None:
                return self._streams_base(module, attr_info, depth + 1)
            return (False, None)
        if kind == "child-const":
            is_streams, path = self._streams_base(module, info.get("base") or {}, depth + 1)
            if is_streams:
                return (True, (path or []) + list(info.get("path", [])))
            return (False, None)
        return (False, None)

    def _self_attr_info(self, module: str, info: dict) -> dict | None:
        cls_name = info.get("cls")
        attr = info.get("attr")
        summary = self.summaries.get(module)
        if summary is None or cls_name not in summary.classes:
            return None
        return summary.classes[cls_name].attrs.get(attr)

    # -- per-function linking -----------------------------------------------

    def _link_function(self, module: str, summary: ModuleSummary, qual: str) -> None:
        program = self.program
        fn = summary.functions[qual]
        caller = f"{module}.{qual}"
        owner_class = qual.split(".")[0] if "." in qual else None

        for site in fn.calls:
            consumed_args: set[str] = set()

            # Worker dispatch: pool.apply_async(task, ...) / initializer=.
            if site.method in SPAWN_METHODS and site.arg_refs:
                target = self._resolve_callable_ref(module, owner_class, site.arg_refs[0])
                if target is not None:
                    program.worker_roots.append(target[0])
                    program.edges.append(
                        Edge(caller, target[0], site.line, module, target[1], "spawn")
                    )
                    consumed_args.add(site.arg_refs[0])
            if site.initializer_ref:
                target = self._resolve_callable_ref(module, owner_class, site.initializer_ref)
                if target is not None:
                    program.worker_roots.append(target[0])
                    program.edges.append(
                        Edge(caller, target[0], site.line, module, target[1], "spawn")
                    )
                    consumed_args.add(site.initializer_ref)

            resolved = self._resolve_site(module, owner_class, site, caller)
            if resolved == "stream":
                pass  # recorded as a stream site, not an edge
            elif resolved is not None:
                callee, recv_global = resolved
                program.edges.append(Edge(caller, callee, site.line, module, recv_global))
            else:
                program.unresolved_calls += 1

            # Callables passed as arguments become may-call edges.
            for ref in site.arg_refs:
                if ref in consumed_args:
                    continue
                target = self._resolve_callable_ref(module, owner_class, ref)
                if target is not None:
                    program.edges.append(
                        Edge(caller, target[0], site.line, module, target[1], "may-call")
                    )

    def _resolve_callable_ref(self, module: str, owner_class: str | None, ref: str):
        """Resolve an argument ref to (func_qual, recv_global) if it names
        an internal function, bound method, or callable-instance class."""
        if ref.startswith("self.") and owner_class is not None:
            summary = self.summaries[module]
            parts = ref.split(".")
            if len(parts) == 2:
                # self.method or self.attr (callable instance)
                found = self._lookup_method(f"{module}.{owner_class}", parts[1])
                if found is not None:
                    return (found, None)
                attr_info = self._self_attr_info(
                    module, {"cls": owner_class, "attr": parts[1]}
                )
                return self._callable_from_bindinfo(module, attr_info)
            if len(parts) == 3 and owner_class in summary.classes:
                # self.attr.method
                attr_info = summary.classes[owner_class].attrs.get(parts[1])
                class_qual = self._class_of_bindinfo(module, attr_info or {})
                if class_qual is not None:
                    found = self._lookup_method(class_qual, parts[2])
                    if found is not None:
                        return (found, None)
            return None
        resolved = self._resolve_dotted_target(module, ref)
        if resolved is None:
            return None
        if resolved[0] == "func":
            return (resolved[1], None)
        if resolved[0] == "class":
            found = self._lookup_method(resolved[1], "__call__")
            if found is not None:
                return (found, None)
        if resolved[0] == "binding":
            recv = f"{resolved[1]}:{resolved[2]}"
            class_qual = self._binding_class(resolved[1], resolved[2])
            if class_qual is not None:
                found = self._lookup_method(class_qual, "__call__")
                if found is not None:
                    return (found, recv)
        return None

    def _callable_from_bindinfo(self, module: str, info: dict | None):
        class_qual = self._class_of_bindinfo(module, info or {})
        if class_qual is None:
            return None
        found = self._lookup_method(class_qual, "__call__")
        if found is not None:
            return (found, None)
        return None

    def _resolve_site(self, module: str, owner_class: str | None, site, caller: str):
        """Resolve one call site to (callee_qual, recv_global), the string
        "stream" for RNG-stream plumbing, or None."""
        program = self.program

        # Stream .get()/.child() first: these are plumbing, not edges.
        if site.method in ("get", "child") and site.recv is not None:
            is_streams, path = self._streams_base(module, site.recv)
            if is_streams:
                if site.method == "get" and site.str_arg0 is not None:
                    program.stream_sites.append(
                        StreamSite(
                            module=module,
                            qual=caller,
                            line=site.line,
                            namespace="/".join(path or []),
                            name=site.str_arg0,
                        )
                    )
                return "stream"

        # Methods on self: self.m() / self.attr.m().
        if (
            site.dotted is not None
            and site.dotted.startswith("self.")
            and owner_class is not None
        ):
            parts = site.dotted.split(".")
            class_qual = f"{module}.{owner_class}"
            if len(parts) == 2:
                found = self._lookup_method(class_qual, parts[1])
                if found is not None:
                    return (found, None)
                # self._fetch(...): a callable instance bound to an attr.
                attr_info = self._self_attr_info(
                    module, {"cls": owner_class, "attr": parts[1]}
                )
                return self._callable_from_bindinfo(module, attr_info)
            if len(parts) == 3:
                attr_info = self._self_attr_info(
                    module, {"cls": owner_class, "attr": parts[1]}
                )
                attr_class = self._class_of_bindinfo(module, attr_info or {})
                if attr_class is not None:
                    found = self._lookup_method(attr_class, parts[2])
                    if found is not None:
                        return (found, None)
            return None

        # Bare name call: helper() / Class().
        if site.dotted is not None and "." not in site.dotted:
            resolved = self._resolve_name(module, site.dotted)
            if resolved is None:
                return None
            if resolved[0] == "func":
                return (resolved[1], None)
            if resolved[0] == "class":
                found = self._lookup_method(resolved[1], "__init__")
                if found is not None:
                    return (found, None)
            return None

        # Pure dotted chain: mod.helper() / mod.OBJ.m() / Class.m().
        if site.dotted is not None:
            resolved = self._resolve_dotted_target(module, site.dotted)
            if resolved is not None and resolved[0] == "func":
                recv_global = self._dotted_recv_global(module, site.dotted)
                return (resolved[1], recv_global)
            if resolved is not None and resolved[0] == "class":
                found = self._lookup_method(resolved[1], "__init__")
                if found is not None:
                    return (found, None)

        # Receiver-classified method call.
        if site.method is not None and site.recv is not None:
            return self._resolve_method_on(module, site.recv, site.method)
        return None

    def _dotted_recv_global(self, module: str, dotted: str) -> str | None:
        """recv_global for chains like ``perf.PERF.count`` / ``PERF.count``."""
        parts = dotted.split(".")
        if len(parts) < 2:
            return None
        # Walk to the second-to-last component and check it is a binding.
        prefix = parts[:-1]
        current = self._resolve_name(module, prefix[0])
        for part in prefix[1:]:
            if current is None or current[0] != "module":
                break
            current = self._resolve_name(current[1], part)
        else:
            if current is not None and current[0] == "binding":
                return f"{current[1]}:{current[2]}"
        return None

    def _resolve_method_on(self, module: str, recv: dict, method: str):
        kind = recv.get("kind")
        if kind == "name-ref":
            resolved = self._resolve_name(module, recv["name"])
            if resolved is None:
                return None
            if resolved[0] == "binding":
                recv_global = f"{resolved[1]}:{resolved[2]}"
                class_qual = self._binding_class(resolved[1], resolved[2])
                if class_qual is not None:
                    found = self._lookup_method(class_qual, method)
                    if found is not None:
                        return (found, recv_global)
                return None
            if resolved[0] == "class":
                found = self._lookup_method(resolved[1], method)
                if found is not None:
                    return (found, None)
            if resolved[0] == "module":
                resolved_fn = self._resolve_name(resolved[1], method)
                if resolved_fn is not None and resolved_fn[0] == "func":
                    return (resolved_fn[1], None)
            return None
        if kind == "self-attr":
            # Method on self: self.m() arrives as recv {"kind": "self-attr"}?
            # No — self.m() is a dotted=None method call with recv self-attr
            # only for self.<attr>.m(); plain self.m() has recv kind unknown
            # (Name "self" is a param).  Handle the attr case:
            attr_info = self._self_attr_info(module, recv)
            if attr_info is None:
                return None
            class_qual = self._class_of_bindinfo(module, attr_info)
            if class_qual is not None:
                found = self._lookup_method(class_qual, method)
                if found is not None:
                    return (found, None)
            return None
        if kind == "param" and recv.get("name") == "self":
            return None  # resolved via the dotted "self.m" path instead
        if kind == "construct":
            resolved = self._resolve_dotted_target(module, recv["name"])
            if resolved is not None and resolved[0] == "class":
                found = self._lookup_method(resolved[1], method)
                if found is not None:
                    return (found, None)
            return None
        if kind == "get-result":
            return "stream" if method else None
        return None
