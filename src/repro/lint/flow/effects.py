"""Transitive effect inference over the call graph (worklist fixpoint).

Every function starts from the base effects its own body exhibits
(:mod:`repro.lint.flow.summarize`) and absorbs the effects of its
callees until nothing changes.  Propagation is *assume–guarantee*: a
callee that declares ``# repro: effects=pure`` or ``worker-safe``
contributes nothing to its callers — the declaration is trusted here and
independently verified by rule D104, so a wrong annotation surfaces
exactly at the annotation site instead of poisoning the whole graph.

Per-kind contribution rules:

* ``mutates-self`` crosses a call edge only when the receiver is a
  module-level instance (``PERF.count()`` → the caller mutates the
  module global ``PERF``); mutation of locally-constructed receivers
  stays local.
* ``mutates-param`` never crosses (mapping arguments through call sites
  is beyond this analyzer; direct writes in the caller still count).
* everything else (``mutates-global``, ``wallclock``, ``raw-rng``,
  ``identity``, ``io``, ``unordered-iter``) propagates as-is.
* ``spawn`` edges do not propagate — the callee runs in a worker
  process; D101 audits that side separately.

Each propagated effect keeps a ``via`` link (callee + call line), so a
finding can print the full witness chain down to the base effect.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lint.flow.graphs import Program
from repro.lint.flow.summarize import (
    CONTRACTS,
    MUTATES_GLOBAL,
    MUTATES_PARAM,
    MUTATES_SELF,
)

_MAX_TARGETS_PER_FN = 32
_MAX_CHAIN = 32


def _base_record(qual: str, module: str, witness: dict) -> dict:
    return {
        "line": witness["line"],
        "detail": witness["detail"],
        "origin": qual,
        "origin_module": module,
        "via": None,
        "via_line": None,
    }


def _via_record(rec: dict, callee: str, line: int) -> dict:
    return {
        "line": line,
        "detail": rec["detail"],
        "origin": rec["origin"],
        "origin_module": rec["origin_module"],
        "via": callee,
        "via_line": line,
    }


@dataclass
class EffectResult:
    """Converged per-function effect sets plus fixpoint metadata."""

    program: Program
    effects: dict = field(default_factory=dict)  # qual -> {kind: record}
    iterations: int = 0
    overflowed: list = field(default_factory=list)  # quals that hit the target cap

    def of(self, qual: str) -> dict:
        return self.effects.get(qual, {})

    def has(self, qual: str, kind: str) -> bool:
        return kind in self.effects.get(qual, {})

    def kinds(self, qual: str) -> list:
        return sorted(self.effects.get(qual, {}))

    def record(self, qual: str, kind: str, target: str | None = None) -> dict | None:
        entry = self.effects.get(qual, {}).get(kind)
        if entry is None:
            return None
        if kind == MUTATES_GLOBAL:
            targets = entry["targets"]
            if target is not None:
                return targets.get(target)
            # arbitrary-but-deterministic representative
            first = min(targets) if targets else None
            return targets.get(first) if first else None
        return entry

    def chain(self, qual: str, kind: str, target: str | None = None) -> list:
        """Witness chain ``[(qual, module, line, detail), ...]`` from
        ``qual`` down to the function exhibiting the base effect."""
        hops: list = []
        seen: set[str] = set()
        current = qual
        for _ in range(_MAX_CHAIN):
            if current in seen:
                break
            seen.add(current)
            rec = self.record(current, kind, target)
            if rec is None:
                break
            module = self.program.module_of(current) or rec["origin_module"]
            hops.append((current, module, rec["line"], rec["detail"]))
            if rec["via"] is None:
                break
            current = rec["via"]
        return hops


def trusted(fn) -> bool:
    """True when the function's declared contract suppresses propagation."""
    return fn is not None and fn.declared in CONTRACTS


def infer_effects(program: Program) -> EffectResult:
    """Run the worklist fixpoint and return converged effect sets."""
    result = EffectResult(program=program)
    effects = result.effects

    # Seed with base effects.
    for qual, (module, fn) in sorted(program.functions.items()):
        per_fn: dict = {}
        for kind, payload in fn.base_effects.items():
            if kind == MUTATES_GLOBAL:
                targets = {}
                for target, witness in payload["targets"].items():
                    # Module-local target names become "module:name".
                    full = target if ":" in target else f"{module}:{target}"
                    targets[full] = _base_record(qual, module, witness)
                per_fn[kind] = {"targets": targets}
            else:
                per_fn[kind] = _base_record(qual, module, payload)
        if per_fn:
            effects[qual] = per_fn

    # Reverse adjacency: callee -> [(caller, edge)].
    callers_of: dict[str, list] = {}
    for edge in program.edges:
        if edge.kind == "spawn":
            continue
        callers_of.setdefault(edge.callee, []).append(edge)

    # Worklist: start from every function that has effects.
    pending = sorted(effects)
    in_queue = set(pending)
    iterations = 0

    while pending:
        iterations += 1
        callee = pending.pop()
        in_queue.discard(callee)
        callee_fn = program.function(callee)
        if trusted(callee_fn):
            continue
        callee_effects = effects.get(callee)
        if not callee_effects:
            continue
        for edge in callers_of.get(callee, ()):
            caller = edge.caller
            if caller == callee:
                continue
            changed = _absorb(effects, caller, callee, edge, callee_effects, result)
            if changed and caller not in in_queue:
                pending.append(caller)
                in_queue.add(caller)

    result.iterations = iterations
    result.overflowed = sorted(set(result.overflowed))
    return result


def _absorb(effects, caller, callee, edge, callee_effects, result) -> bool:
    """Merge ``callee``'s effects into ``caller`` across one edge."""
    changed = False
    per_caller = effects.setdefault(caller, {})
    for kind, payload in callee_effects.items():
        if kind == MUTATES_PARAM:
            continue
        if kind == MUTATES_SELF:
            if edge.recv_global is None:
                continue
            targets = per_caller.setdefault(MUTATES_GLOBAL, {"targets": {}})["targets"]
            if edge.recv_global not in targets:
                if len(targets) >= _MAX_TARGETS_PER_FN:
                    result.overflowed.append(caller)
                    continue
                targets[edge.recv_global] = _via_record(payload, callee, edge.line)
                changed = True
            continue
        if kind == MUTATES_GLOBAL:
            targets = per_caller.setdefault(MUTATES_GLOBAL, {"targets": {}})["targets"]
            for target, rec in payload["targets"].items():
                if target in targets:
                    continue
                if len(targets) >= _MAX_TARGETS_PER_FN:
                    result.overflowed.append(caller)
                    break
                targets[target] = _via_record(rec, callee, edge.line)
                changed = True
            continue
        if kind not in per_caller:
            per_caller[kind] = _via_record(payload, callee, edge.line)
            changed = True
    mutates = per_caller.get(MUTATES_GLOBAL)
    if mutates is not None and not mutates["targets"]:
        del per_caller[MUTATES_GLOBAL]
    if not per_caller:
        effects.pop(caller, None)
    return changed


def reachable_from(program: Program, roots) -> dict:
    """Functions reachable from ``roots`` along call/may-call/spawn edges,
    stopping at (and excluding) declared-contract boundaries.

    Returns ``{qual: (via_qual | None, line | None)}`` — the discovery
    edge, for diagnostics."""
    out: dict = {}
    stack = []
    for root in roots:
        fn = program.function(root)
        if fn is None or trusted(fn):
            continue
        if root not in out:
            out[root] = (None, None)
            stack.append(root)
    while stack:
        qual = stack.pop()
        for edge in program.edges_from(qual):
            callee = edge.callee
            if callee in out:
                continue
            fn = program.function(callee)
            if fn is None or trusted(fn):
                continue
            out[callee] = (qual, edge.line)
            stack.append(callee)
    return out
