"""Per-module summaries for the flow analyzer.

One :class:`ModuleSummary` is extracted per source file and is the unit
of incremental caching: it must be derivable from the module source
alone (no cross-module lookups — those happen in
:mod:`repro.lint.flow.graphs`) and must round-trip through JSON so the
digest cache can store it.

A summary records, per function (methods included, nested defs and
lambdas folded into their enclosing function):

* **base effects** — effects evident in the body itself: writes to
  module globals / ``self`` / parameters, wall-clock reads, raw RNG
  calls, ``id()``, filesystem IO, iteration over sets;
* **call sites** — with the receiver classified through a lightweight
  binder (parameter, local, ``self`` attribute, module-level binding,
  dotted import chain) so method calls can be resolved cross-module
  later, plus any internal callables passed as arguments (a task
  function handed to ``apply_async`` is a call edge in every sense that
  matters here);
* **declared contracts** — ``# repro: effects=...`` comments, parsed
  with the same tokenize approach as the waiver machinery.

Classes record their bases and a binder of ``self.<attr>`` assignments
so ``self._fetcher.fetch(...)`` can be resolved to the bound class.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field

# ---------------------------------------------------------------------------
# Effect kinds
# ---------------------------------------------------------------------------

MUTATES_GLOBAL = "mutates-global"
MUTATES_SELF = "mutates-self"
MUTATES_PARAM = "mutates-param"
WALLCLOCK = "wallclock"
RAW_RNG = "raw-rng"
IDENTITY = "identity"
IO_EFFECT = "io"
UNORDERED_ITER = "unordered-iter"

EFFECT_KINDS = (
    MUTATES_GLOBAL,
    MUTATES_SELF,
    MUTATES_PARAM,
    WALLCLOCK,
    RAW_RNG,
    IDENTITY,
    IO_EFFECT,
    UNORDERED_ITER,
)

#: Contract levels a function may declare.  ``pure`` forbids every kind;
#: ``worker-safe`` permits mutation of the receiver/arguments (worker-local
#: by the annotation's assertion) but none of the global/nondeterminism
#: kinds.
CONTRACTS = ("pure", "worker-safe")

_PURE_FORBIDS = frozenset(EFFECT_KINDS)
_WORKER_SAFE_FORBIDS = frozenset(
    (MUTATES_GLOBAL, WALLCLOCK, RAW_RNG, IDENTITY, UNORDERED_ITER)
)

CONTRACT_FORBIDS = {"pure": _PURE_FORBIDS, "worker-safe": _WORKER_SAFE_FORBIDS}

# Wall-clock reads, matched after import resolution (same set D003 uses,
# minus the monotonic clocks).
_WALLCLOCK_CALLS = frozenset(
    (
        "time.time",
        "time.time_ns",
        "time.localtime",
        "time.gmtime",
        "time.ctime",
        "time.strftime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.date.today",
    )
)

# Raw (unseeded, process-global) RNG sources.
_RNG_PREFIXES = ("random.", "numpy.random.", "secrets.")
_RNG_EXACT = frozenset(("uuid.uuid4", "os.urandom"))
# Seeded-generator constructors are the *discipline*, not a violation:
# random.Random(seed) / PCG64(seed) own their reproducible stream.
_RNG_SEEDED_CONSTRUCTORS = frozenset(
    (
        "random.Random",
        "numpy.random.Generator",
        "numpy.random.PCG64",
        "numpy.random.default_rng",
        "numpy.random.SeedSequence",
    )
)

# Filesystem / network IO (write-capable entries marked in the witness).
_IO_CALLS = frozenset(
    (
        "os.remove",
        "os.unlink",
        "os.rename",
        "os.replace",
        "os.makedirs",
        "os.mkdir",
        "os.rmdir",
    )
)
_IO_PREFIXES = ("shutil.", "socket.", "subprocess.", "urllib.request.")

# Mutating container/object methods (superset of the D007 list).
_MUTATING_METHODS = frozenset(
    (
        "append",
        "add",
        "extend",
        "insert",
        "remove",
        "discard",
        "pop",
        "popitem",
        "clear",
        "update",
        "setdefault",
        "sort",
        "reverse",
        "appendleft",
        "extendleft",
        "popleft",
        "write",
        "writelines",
    )
)

_ANNOTATION_RE = re.compile(
    r"#\s*repro:\s*(?P<kind>effects=(?P<value>[\w-]+)|merge-root|worker-entry)\s*$"
)

# ---------------------------------------------------------------------------
# Summary records
# ---------------------------------------------------------------------------


def _witness(line: int, detail: str) -> dict:
    return {"line": line, "detail": detail}


@dataclass
class CallSite:
    """One call expression inside a function body."""

    line: int
    #: dotted name when the callee is a plain ``Name``/``Attribute`` chain
    #: (``"helper"``, ``"mod.helper"``, ``"a.b.c"``); None for computed calls.
    dotted: str | None = None
    #: method name when the callee is ``<expr>.m(...)`` with a non-trivial
    #: receiver; the receiver is then classified in ``recv``.
    method: str | None = None
    #: receiver bind info for method calls (see ``classify`` kinds).
    recv: dict | None = None
    #: literal string first argument, when present (``.get("traffic")``).
    str_arg0: str | None = None
    #: dotted refs of Name/Attribute arguments (callables passed along).
    arg_refs: list = field(default_factory=list)
    #: dotted ref of the ``initializer=`` keyword, when present.
    initializer_ref: str | None = None

    def to_dict(self) -> dict:
        return {
            "line": self.line,
            "dotted": self.dotted,
            "method": self.method,
            "recv": self.recv,
            "str_arg0": self.str_arg0,
            "arg_refs": self.arg_refs,
            "initializer_ref": self.initializer_ref,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CallSite":
        return cls(**data)


@dataclass
class FunctionSummary:
    qualname: str  # module-relative: "f" or "Class.m"
    lineno: int
    params: list = field(default_factory=list)
    #: kind -> witness dict; MUTATES_GLOBAL instead maps target "mod:name"
    #: -> witness under the "targets" key.
    base_effects: dict = field(default_factory=dict)
    calls: list = field(default_factory=list)
    declared: str | None = None  # "pure" | "worker-safe"
    declared_line: int | None = None
    merge_root: bool = False
    worker_entry: bool = False

    def to_dict(self) -> dict:
        return {
            "qualname": self.qualname,
            "lineno": self.lineno,
            "params": self.params,
            "base_effects": self.base_effects,
            "calls": [c.to_dict() for c in self.calls],
            "declared": self.declared,
            "declared_line": self.declared_line,
            "merge_root": self.merge_root,
            "worker_entry": self.worker_entry,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FunctionSummary":
        data = dict(data)
        data["calls"] = [CallSite.from_dict(c) for c in data["calls"]]
        return cls(**data)


@dataclass
class ClassSummary:
    name: str
    lineno: int
    bases: list = field(default_factory=list)  # dotted names, module-local
    #: ``self.<attr> = <expr>`` binder: attr -> bind info dict.
    attrs: dict = field(default_factory=dict)
    methods: list = field(default_factory=list)  # method names

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "lineno": self.lineno,
            "bases": self.bases,
            "attrs": self.attrs,
            "methods": self.methods,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ClassSummary":
        return cls(**data)


@dataclass
class ModuleSummary:
    module: str  # dotted module name, e.g. "repro.perf.cache"
    path: str
    #: local name -> {"kind": "module", "module": dotted} or
    #: {"kind": "object", "module": dotted, "name": str}
    imports: dict = field(default_factory=dict)
    #: module-level assignment binder: name -> bind info dict.
    bindings: dict = field(default_factory=dict)
    functions: dict = field(default_factory=dict)  # qualname -> FunctionSummary
    classes: dict = field(default_factory=dict)  # name -> ClassSummary
    #: problems met while summarizing: {"kind": "syntax"|"annotation",
    #: "line": int, "message": str}
    errors: list = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "module": self.module,
            "path": self.path,
            "imports": self.imports,
            "bindings": self.bindings,
            "functions": {q: f.to_dict() for q, f in sorted(self.functions.items())},
            "classes": {n: c.to_dict() for n, c in sorted(self.classes.items())},
            "errors": self.errors,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ModuleSummary":
        data = dict(data)
        data["functions"] = {
            q: FunctionSummary.from_dict(f) for q, f in data["functions"].items()
        }
        data["classes"] = {
            n: ClassSummary.from_dict(c) for n, c in data["classes"].items()
        }
        return cls(**data)


# ---------------------------------------------------------------------------
# Annotation comments (tokenize pass, mirrors the waiver collector)
# ---------------------------------------------------------------------------


def collect_annotations(source: str) -> dict:
    """Map line numbers to flow annotations found in comments.

    Returns ``{line: {"kind": "effects"|"merge-root"|"worker-entry",
    "value": str|None}}``.  Unknown ``effects=`` values are kept verbatim
    so D104 can flag them at the declaration site.
    """
    annotations: dict[int, dict] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _ANNOTATION_RE.match(tok.string.strip())
            if not match:
                continue
            kind = match.group("kind")
            if kind.startswith("effects="):
                annotations[tok.start[0]] = {
                    "kind": "effects",
                    "value": match.group("value"),
                }
            else:
                annotations[tok.start[0]] = {"kind": kind, "value": None}
    except tokenize.TokenError:
        pass
    return annotations


# ---------------------------------------------------------------------------
# Expression helpers
# ---------------------------------------------------------------------------


def _dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` as a string for pure Name/Attribute chains, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _root_name(node: ast.AST) -> str | None:
    """Leftmost Name of an attribute/subscript chain, else None."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = _dotted_name(node.func)
        return name in ("set", "frozenset")
    return False


class _FunctionExtractor:
    """Walk one function body (nested defs folded in) collecting base
    effects, call sites, and a local-variable binder."""

    def __init__(
        self,
        summary: FunctionSummary,
        module_names: set,
        owner_class: str | None,
        imports: dict | None = None,
    ):
        self.fn = summary
        self.module_names = module_names  # names bound at module level
        self.owner_class = owner_class
        self.imports = imports or {}
        self.params = set(summary.params)
        self.globals_declared: set[str] = set()
        self.locals: dict[str, dict] = {}
        self.set_locals: set[str] = set()

    def _canonical(self, dotted: str | None) -> str | None:
        """Expand the root of a dotted name through the import table so
        ``from time import time`` matches ``time.time``."""
        if dotted is None:
            return None
        root, _, rest = dotted.partition(".")
        info = self.imports.get(root)
        if info is None:
            return dotted
        if info["kind"] == "module":
            base = info["module"]
        else:
            base = f"{info['module']}.{info['name']}"
        return f"{base}.{rest}" if rest else base

    # -- effect recording ---------------------------------------------------

    def _add_effect(self, kind: str, line: int, detail: str) -> None:
        effects = self.fn.base_effects
        if kind == MUTATES_GLOBAL:
            raise ValueError("use _add_global_effect")
        effects.setdefault(kind, _witness(line, detail))

    def _add_global_effect(self, name: str, line: int, detail: str) -> None:
        targets = self.fn.base_effects.setdefault(MUTATES_GLOBAL, {"targets": {}})
        targets["targets"].setdefault(name, _witness(line, detail))

    def _record_store(self, target: ast.AST, line: int) -> None:
        root = _root_name(target)
        if isinstance(target, ast.Name):
            # Plain rebind of a local is not an effect unless declared global.
            if target.id in self.globals_declared:
                self._add_global_effect(target.id, line, f"assign {target.id}")
            return
        if root is None:
            return
        if root == "self" and self.owner_class is not None:
            self._add_effect(MUTATES_SELF, line, _dotted_name(target) or "self")
        elif root in self.params:
            self._add_effect(MUTATES_PARAM, line, root)
        elif root in self.locals or root in self.set_locals:
            pass
        elif root in self.module_names or root in self.globals_declared:
            self._add_global_effect(root, line, f"store into {root}")

    def _record_mutating_call(self, recv: ast.AST, method: str, line: int) -> None:
        root = _root_name(recv)
        detail = f".{method}()"
        if root is None:
            return
        if root == "self" and self.owner_class is not None:
            self._add_effect(MUTATES_SELF, line, f"self...{detail}")
        elif root in self.params:
            self._add_effect(MUTATES_PARAM, line, f"{root}{detail}")
        elif root in self.locals or root in self.set_locals:
            pass
        elif root in self.module_names or root in self.globals_declared:
            self._add_global_effect(root, line, f"{root}{detail}")

    # -- binder -------------------------------------------------------------

    def classify(self, node: ast.AST, depth: int = 0) -> dict:
        """Bind info for an expression, for receiver/attr resolution.

        Kinds produced here (module-local; cross-module meaning assigned
        in graphs.py): ``construct`` (call of a Name/Attribute — likely a
        class), ``param``, ``name-ref`` (module-level name), ``self-attr``,
        ``dotted-ref``, ``child-const`` / ``child-dyn`` / ``get-result``
        (RNG stream plumbing), ``set``, ``unknown``.
        """
        if depth > 6:
            return {"kind": "unknown"}
        if isinstance(node, ast.Name):
            name = node.id
            if name in self.locals:
                return self.locals[name]
            if name in self.set_locals:
                return {"kind": "set"}
            if name in self.params:
                return {"kind": "param", "name": name}
            if name in self.module_names:
                return {"kind": "name-ref", "name": name}
            return {"kind": "unknown"}
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) and node.value.id == "self":
                if self.owner_class is not None:
                    return {
                        "kind": "self-attr",
                        "cls": self.owner_class,
                        "attr": node.attr,
                    }
            dotted = _dotted_name(node)
            if dotted is not None:
                return {"kind": "dotted-ref", "dotted": dotted}
            return {"kind": "unknown"}
        if isinstance(node, ast.Call):
            func_dotted = _dotted_name(node.func)
            if func_dotted in ("set", "frozenset"):
                return {"kind": "set"}
            if isinstance(node.func, ast.Attribute):
                base = self.classify(node.func.value, depth + 1)
                method = node.func.attr
                if method == "child":
                    arg = node.args[0] if node.args else None
                    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                        path = list(base.get("path", [])) if base.get("kind") == "child-const" else []
                        return {"kind": "child-const", "base": _strip(base), "path": path + [arg.value]}
                    return {"kind": "child-dyn"}
                if method == "get":
                    return {"kind": "get-result", "base": _strip(base)}
            if func_dotted is not None:
                return {"kind": "construct", "name": func_dotted}
            return {"kind": "unknown"}
        if _is_set_expr(node):
            return {"kind": "set"}
        return {"kind": "unknown"}

    def _bind_local(self, target: ast.AST, value: ast.AST) -> None:
        if not isinstance(target, ast.Name):
            return
        info = self.classify(value)
        if info.get("kind") == "set" or _is_set_expr(value):
            self.set_locals.add(target.id)
            self.locals.pop(target.id, None)
        else:
            self.locals[target.id] = info
            self.set_locals.discard(target.id)

    # -- calls --------------------------------------------------------------

    def _external_effects(self, dotted: str | None, line: int) -> bool:
        """Record wallclock/RNG/IO/identity effects for well-known calls.

        Returns True when the call was consumed as an external effect
        source (no call-site record needed)."""
        if dotted is None:
            return False
        if dotted == "id":
            self._add_effect(IDENTITY, line, "id()")
            return True
        if dotted == "open":
            self._add_effect(IO_EFFECT, line, "open")
            return True
        if dotted in _WALLCLOCK_CALLS:
            self._add_effect(WALLCLOCK, line, dotted)
            return True
        if dotted in _RNG_EXACT or (
            dotted.startswith(_RNG_PREFIXES) and dotted not in _RNG_SEEDED_CONSTRUCTORS
        ):
            self._add_effect(RAW_RNG, line, dotted)
            return True
        if dotted in _IO_CALLS or dotted.startswith(_IO_PREFIXES):
            self._add_effect(IO_EFFECT, line, dotted)
            return True
        return False

    def _open_mode(self, node: ast.Call) -> str:
        for idx, arg in enumerate(node.args):
            if idx == 1 and isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                return arg.value
        for kw in node.keywords:
            if kw.arg == "mode" and isinstance(kw.value, ast.Constant):
                return str(kw.value.value)
        return "r"

    def _record_call(self, node: ast.Call) -> None:
        line = node.lineno
        raw_dotted = _dotted_name(node.func)
        resolved_dotted = raw_dotted
        if raw_dotted is not None and _root_name(node.func) not in self.locals:
            resolved_dotted = self._canonical(raw_dotted)
        if self._external_effects(resolved_dotted, line):
            if resolved_dotted == "open":
                mode = self._open_mode(node)
                if any(ch in mode for ch in "wax+"):
                    self.fn.base_effects[IO_EFFECT] = _witness(line, f"open:{mode}")
            return

        site = CallSite(line=line)
        if isinstance(node.func, ast.Attribute) and raw_dotted is None:
            # Computed receiver: <expr>.m(...)
            site.method = node.func.attr
            site.recv = self.classify(node.func.value)
        elif isinstance(node.func, ast.Attribute):
            # Pure dotted chain a.b.m(...): keep both views — graphs.py
            # prefers dotted resolution and falls back to receiver+method.
            site.dotted = raw_dotted
            site.method = node.func.attr
            site.recv = self.classify(node.func.value)
        elif isinstance(node.func, ast.Name):
            site.dotted = raw_dotted
        else:
            return  # computed callee — nothing to resolve

        if node.args:
            first = node.args[0]
            if isinstance(first, ast.Constant) and isinstance(first.value, str):
                site.str_arg0 = first.value
        for arg in node.args:
            ref = _dotted_name(arg)
            if ref is not None and not isinstance(arg, ast.Constant):
                site.arg_refs.append(ref)
        for kw in node.keywords:
            ref = _dotted_name(kw.value)
            if ref is None:
                continue
            site.arg_refs.append(ref)
            if kw.arg == "initializer":
                site.initializer_ref = ref

        # Mutating method on a classified receiver is also a base effect.
        if site.method in _MUTATING_METHODS and isinstance(node.func, ast.Attribute):
            self._record_mutating_call(node.func.value, site.method, line)
        self.fn.calls.append(site)

    # -- walk ---------------------------------------------------------------

    def walk(self, body: list) -> None:
        # Pre-order, source-ordered traversal: locals must be bound before
        # later statements that use them (e.g. a set assigned then iterated).
        stack = list(reversed(body))
        while stack:
            node = stack.pop()
            if isinstance(node, ast.Global):
                self.globals_declared.update(node.names)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    self._record_store(target, node.lineno)
                    self._bind_local(target, node.value)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                if node.value is not None or isinstance(node, ast.AugAssign):
                    self._record_store(node.target, node.lineno)
                    if node.value is not None:
                        self._bind_local(node.target, node.value)
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    self._record_store(target, node.lineno)
            elif isinstance(node, ast.Call):
                self._record_call(node)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                self._check_iteration(node.iter, node.iter.lineno)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                for gen in node.generators:
                    self._check_iteration(gen.iter, getattr(gen.iter, "lineno", node.lineno))
            elif isinstance(node, ast.withitem):
                pass

            children: list = []
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                    # Fold nested callables into the encloser: their params
                    # join the param set (conservative) and bodies are walked.
                    if isinstance(child, ast.Lambda):
                        children.append(child.body)
                    else:
                        self.params.update(a.arg for a in _all_args(child.args))
                        children.extend(child.body)
                    continue
                if isinstance(child, ast.ClassDef):
                    continue  # classes nested in functions: out of scope
                children.append(child)
            stack.extend(reversed(children))

    def _check_iteration(self, iter_node: ast.AST, line: int) -> None:
        if _is_set_expr(iter_node):
            self._add_effect(UNORDERED_ITER, line, "iterating a set expression")
            return
        if isinstance(iter_node, ast.Name) and iter_node.id in self.set_locals:
            self._add_effect(UNORDERED_ITER, line, f"iterating set {iter_node.id!r}")


def _strip(info: dict) -> dict:
    """Bound the nesting of stored bind infos (cache-size hygiene)."""
    if info.get("kind") in ("child-const", "get-result") and isinstance(info.get("base"), dict):
        base = dict(info["base"])
        base.pop("base", None)
        info = dict(info)
        info["base"] = base
    return info


def _all_args(args: ast.arguments) -> list:
    out = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
    if args.vararg:
        out.append(args.vararg)
    if args.kwarg:
        out.append(args.kwarg)
    return out


# ---------------------------------------------------------------------------
# Module summarization
# ---------------------------------------------------------------------------


def _module_level_names(tree: ast.Module) -> set:
    names: set[str] = set()
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
                elif isinstance(target, ast.Tuple):
                    names.update(e.id for e in target.elts if isinstance(e, ast.Name))
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            if isinstance(node.target, ast.Name):
                names.add(node.target.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                names.add((alias.asname or alias.name).split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                names.add(alias.asname or alias.name)
    return names


def _resolve_relative(module: str, node: ast.ImportFrom) -> str | None:
    if node.level == 0:
        return node.module
    parts = module.split(".")
    if node.level > len(parts):
        return None
    base = parts[: len(parts) - node.level]
    if node.module:
        base.append(node.module)
    return ".".join(base) if base else None


def _apply_annotations(summary: ModuleSummary, annotations: dict, def_lines: dict) -> None:
    """Attach effects=/merge-root/worker-entry comments to functions.

    A comment binds to the def on the same line, or to a def on the next
    line when it stands alone above the signature."""
    for line, ann in sorted(annotations.items()):
        qual = def_lines.get(line) or def_lines.get(line + 1)
        if qual is None:
            summary.errors.append(
                {
                    "kind": "annotation",
                    "line": line,
                    "message": "flow annotation is not attached to a function def",
                }
            )
            continue
        fn = summary.functions[qual]
        if ann["kind"] == "effects":
            fn.declared = ann["value"]
            fn.declared_line = line
        elif ann["kind"] == "merge-root":
            fn.merge_root = True
        elif ann["kind"] == "worker-entry":
            fn.worker_entry = True


def summarize_module(module: str, path: str, source: str) -> ModuleSummary:
    """Extract the flow summary for one module's source text."""
    summary = ModuleSummary(module=module, path=path)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        summary.errors.append(
            {"kind": "syntax", "line": exc.lineno or 1, "message": f"syntax error: {exc.msg}"}
        )
        return summary

    module_names = _module_level_names(tree)
    def_lines: dict[int, str] = {}

    # Imports first: external-effect matching inside function bodies
    # canonicalizes through this table regardless of statement order.
    for node in tree.body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    summary.imports[alias.asname] = {"kind": "module", "module": alias.name}
                else:
                    # "import a.b.c" binds the root package; submodules are
                    # reached by attribute walking during resolution.
                    root = alias.name.split(".")[0]
                    summary.imports[root] = {"kind": "module", "module": root}
        elif isinstance(node, ast.ImportFrom):
            resolved = _resolve_relative(module, node)
            if resolved is None:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                summary.imports[local] = {
                    "kind": "object",
                    "module": resolved,
                    "name": alias.name,
                }

    for node in tree.body:
        if isinstance(node, ast.Assign):
            extractor = _FunctionExtractor(
                FunctionSummary(qualname="<module>", lineno=node.lineno),
                module_names,
                None,
                summary.imports,
            )
            info = extractor.classify(node.value)
            for target in node.targets:
                if isinstance(target, ast.Name):
                    summary.bindings[target.id] = info
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            _summarize_function(summary, node, node.name, module_names, None, def_lines, summary.imports)
        elif isinstance(node, ast.ClassDef):
            _summarize_class(summary, node, module_names, def_lines, summary.imports)

    _apply_annotations(summary, collect_annotations(source), def_lines)
    return summary


def _summarize_function(
    summary: ModuleSummary,
    node: ast.FunctionDef,
    qualname: str,
    module_names: set,
    owner_class: str | None,
    def_lines: dict,
    imports: dict,
) -> None:
    fn = FunctionSummary(
        qualname=qualname,
        lineno=node.lineno,
        params=[a.arg for a in _all_args(node.args)],
    )
    extractor = _FunctionExtractor(fn, module_names, owner_class, imports)
    extractor.walk(node.body)
    summary.functions[qualname] = fn
    def_lines[node.lineno] = qualname
    # Decorated defs: the annotation comment may sit above the first
    # decorator, so map that line too.
    if node.decorator_list:
        first = min(d.lineno for d in node.decorator_list)
        def_lines.setdefault(first, qualname)
        def_lines.setdefault(first - 1, qualname)


def _summarize_class(
    summary: ModuleSummary,
    node: ast.ClassDef,
    module_names: set,
    def_lines: dict,
    imports: dict,
) -> None:
    cls = ClassSummary(name=node.name, lineno=node.lineno)
    for base in node.bases:
        dotted = _dotted_name(base)
        if dotted is not None:
            cls.bases.append(dotted)
    for item in node.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            cls.methods.append(item.name)
            qual = f"{node.name}.{item.name}"
            _summarize_function(summary, item, qual, module_names, node.name, def_lines, imports)
            _collect_self_attrs(summary.functions[qual], item, cls, module_names, node.name, imports)
    summary.classes[node.name] = cls


def _collect_self_attrs(
    fn: FunctionSummary,
    node: ast.FunctionDef,
    cls: ClassSummary,
    module_names: set,
    owner_class: str,
    imports: dict,
) -> None:
    """Record ``self.<attr> = <expr>`` bindings into the class binder."""
    extractor = _FunctionExtractor(
        FunctionSummary(qualname=fn.qualname, lineno=fn.lineno, params=list(fn.params)),
        module_names,
        owner_class,
        imports,
    )
    for stmt in ast.walk(node):
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                extractor._bind_local(target, stmt.value)
            for target in stmt.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    info = extractor.classify(stmt.value)
                    cls.attrs.setdefault(target.attr, _strip(info))
