"""Orchestration for the deep pass: summarize → link → infer → rules.

:func:`deep_lint` is the API behind ``repro lint --deep``: it discovers
files exactly like the shallow pass, summarizes each module through the
digest cache, links the whole program, runs the effect fixpoint, applies
the D101–D105 rules, and filters findings through the same
``# repro: allow-D10x <reason>`` waivers the shallow pass uses.

Timing and graph-size stats ride on the report (``FlowStats``) so the
lint summary artifact and ``BENCH_lint.json`` can track analyzer cost
per run — cold vs. warm cache included.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.lint.core import (
    Finding,
    _collect_suppressions,
    discover_files,
)
from repro.lint.flow.cache import DEFAULT_CACHE_DIR, AnalysisCache
from repro.lint.flow.effects import EffectResult, infer_effects
from repro.lint.flow.graphs import Program, link
from repro.lint.flow.rules import FlowRule, all_flow_rules


def module_name_for(path: str) -> str:
    """Dotted module name of a file, walking up through ``__init__.py``
    packages (``src/repro/perf/cache.py`` → ``repro.perf.cache``)."""
    path = os.path.abspath(path)
    directory, filename = os.path.split(path)
    stem = filename[:-3] if filename.endswith(".py") else filename
    parts: List[str] = [] if stem == "__init__" else [stem]
    while os.path.isfile(os.path.join(directory, "__init__.py")):
        directory, package = os.path.split(directory)
        parts.insert(0, package)
        if not package:
            break
    return ".".join(parts) if parts else stem


@dataclass
class FlowStats:
    """Graph sizes, fixpoint cost, and cache traffic for one deep run."""

    modules: int = 0
    functions: int = 0
    classes: int = 0
    import_edges: int = 0
    call_edges: int = 0
    worker_roots: int = 0
    merge_roots: int = 0
    stream_sites: int = 0
    unresolved_calls: int = 0
    fixpoint_iterations: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    summarize_s: float = 0.0
    analyze_s: float = 0.0
    total_s: float = 0.0

    def to_dict(self) -> dict:
        return {
            "modules": self.modules,
            "functions": self.functions,
            "classes": self.classes,
            "import_edges": self.import_edges,
            "call_edges": self.call_edges,
            "worker_roots": self.worker_roots,
            "merge_roots": self.merge_roots,
            "stream_sites": self.stream_sites,
            "unresolved_calls": self.unresolved_calls,
            "fixpoint_iterations": self.fixpoint_iterations,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "summarize_s": round(self.summarize_s, 6),
            "analyze_s": round(self.analyze_s, 6),
            "total_s": round(self.total_s, 6),
        }


@dataclass
class FlowReport:
    """Outcome of one deep pass (post-waiver findings + stats)."""

    findings: List[Finding]
    stats: FlowStats
    rule_codes: List[str]
    suppressions_used: int = 0
    unused_suppression_sites: List[Tuple[str, int]] = field(default_factory=list)
    program: Optional[Program] = None
    effects: Optional[EffectResult] = None

    @property
    def ok(self) -> bool:
        return not self.findings

    @property
    def by_rule(self) -> dict:
        counts: dict = {}
        for finding in self.findings:
            counts[finding.code] = counts.get(finding.code, 0) + 1
        return counts


def analyze_paths(
    paths: Sequence[str],
    root: Optional[str] = None,
    cache_dir: Optional[str] = DEFAULT_CACHE_DIR,
    stats: Optional[FlowStats] = None,
):
    """Summarize + link + infer over every ``.py`` file under ``paths``.

    Returns ``(program, effects, stats)``.  ``cache_dir=None`` disables
    the summary cache entirely."""
    stats = stats or FlowStats()
    started = time.perf_counter()
    base = root or os.getcwd()
    cache = AnalysisCache(cache_dir)

    summaries: dict = {}
    t0 = time.perf_counter()
    for path in discover_files(paths):
        display = (
            os.path.relpath(path, base) if os.path.isabs(path) else path
        ).replace(os.sep, "/")
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        module = module_name_for(path)
        if module in summaries:
            # Two files mapping to one dotted name (standalone scripts with
            # equal stems): key the later one by its path instead.
            module = display[:-3].replace("/", ".")
        summaries[module] = cache.summarize(module, display, source)
    stats.summarize_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    program = link(summaries)
    effects = infer_effects(program)
    stats.analyze_s = time.perf_counter() - t0

    stats.modules = len(summaries)
    stats.functions = len(program.functions)
    stats.classes = len(program.classes)
    stats.import_edges = sum(len(v) for v in program.import_edges.values())
    stats.call_edges = len(program.edges)
    stats.worker_roots = len(program.worker_roots)
    stats.merge_roots = len(program.merge_roots)
    stats.stream_sites = len(program.stream_sites)
    stats.unresolved_calls = program.unresolved_calls
    stats.fixpoint_iterations = effects.iterations
    stats.cache_hits = cache.hits
    stats.cache_misses = cache.misses
    stats.total_s = time.perf_counter() - started
    return program, effects, stats


def deep_lint(
    paths: Sequence[str],
    root: Optional[str] = None,
    cache_dir: Optional[str] = DEFAULT_CACHE_DIR,
    rules: Optional[Sequence[FlowRule]] = None,
) -> FlowReport:
    """Run the whole deep pass and apply waivers.  The shallow pass owns
    reason-less-suppression (D000) reporting, so this only consumes
    well-formed waivers whose codes all belong to the active flow rules."""
    started = time.perf_counter()
    active_rules = list(rules) if rules is not None else all_flow_rules()
    program, effects, stats = analyze_paths(paths, root=root, cache_dir=cache_dir)

    raw: List[Finding] = []
    for rule in active_rules:
        raw.extend(rule.check(program, effects))

    active_codes = {rule.code for rule in active_rules}
    findings: List[Finding] = []
    used = 0
    unused_sites: List[Tuple[str, int]] = []
    suppressions_by_path: dict = {}
    base = root or os.getcwd()
    for module in sorted(program.summaries):
        summary = program.summaries[module]
        # Summaries carry root-relative display paths; re-anchor on the
        # root so waivers are found regardless of the caller's cwd.
        real = summary.path
        if not os.path.isabs(real) and not os.path.exists(real):
            real = os.path.join(base, summary.path)
        try:
            with open(real, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError:
            continue
        sups, _problems = _collect_suppressions(summary.path, source)
        relevant = [s for s in sups if all(c in active_codes for c in s.codes)]
        if relevant:
            suppressions_by_path[summary.path] = relevant

    for finding in sorted(raw, key=lambda f: (f.path, f.line, f.col, f.code)):
        waiver = next(
            (s for s in suppressions_by_path.get(finding.path, ()) if s.covers(finding)),
            None,
        )
        if waiver is not None:
            waiver.used = True
        else:
            findings.append(finding)

    for path in sorted(suppressions_by_path):
        for suppression in suppressions_by_path[path]:
            if suppression.used:
                used += 1
            else:
                unused_sites.append((path, suppression.line))

    stats.total_s = time.perf_counter() - started
    return FlowReport(
        findings=findings,
        stats=stats,
        rule_codes=sorted(active_codes),
        suppressions_used=used,
        unused_suppression_sites=unused_sites,
        program=program,
        effects=effects,
    )


def graph_dump(program: Program, stats: FlowStats) -> dict:
    """JSON-ready dump of the module/call graph (``--graph json``)."""
    return {
        "schema": 1,
        "stats": stats.to_dict(),
        "modules": {
            module: {
                "path": program.summaries[module].path,
                "imports": program.import_edges.get(module, []),
                "functions": sorted(program.summaries[module].functions),
            }
            for module in sorted(program.summaries)
        },
        "edges": [
            edge.to_dict()
            for edge in sorted(
                program.edges, key=lambda e: (e.module, e.line, e.caller, e.callee)
            )
        ],
        "worker_roots": program.worker_roots,
        "merge_roots": program.merge_roots,
        "stream_sites": [site.to_dict() for site in program.stream_sites],
    }
