"""Interprocedural rules D101–D105 over the linked program + effects.

Flow rules see the whole program at once (unlike :class:`repro.lint.core.Rule`,
which sees one file), so they register in their own registry and are run
by :func:`repro.lint.flow.analysis.analyze_paths`.  Findings reuse
:class:`repro.lint.core.Finding` and the same ``# repro: allow-D10x``
waiver machinery, anchored at the line each message names.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Type

from repro.lint.core import Finding
from repro.lint.flow.effects import EffectResult, reachable_from, trusted
from repro.lint.flow.graphs import Program
from repro.lint.flow.summarize import (
    CONTRACT_FORBIDS,
    CONTRACTS,
    IDENTITY,
    MUTATES_GLOBAL,
    MUTATES_SELF,
    RAW_RNG,
    UNORDERED_ITER,
    WALLCLOCK,
)

#: Nondeterminism kinds that taint an artifact writer (D102).
TAINT_KINDS = (WALLCLOCK, RAW_RNG, IDENTITY, UNORDERED_ITER)

#: Origin locations whose wallclock/identity reads are sanctioned — the
#: observability layer stamps manifests by design (mirrors D003's exemption).
_SANCTIONED_ORIGIN_DIRS = ("repro/obs",)
_SANCTIONED_ORIGIN_SUFFIXES = ("util/perf.py",)

_FLOW_REGISTRY: Dict[str, Type["FlowRule"]] = {}


def register_flow(rule_cls: Type["FlowRule"]) -> Type["FlowRule"]:
    _FLOW_REGISTRY[rule_cls.code] = rule_cls
    return rule_cls


def all_flow_rules() -> List["FlowRule"]:
    return [_FLOW_REGISTRY[code]() for code in sorted(_FLOW_REGISTRY)]


def flow_rule_codes() -> List[str]:
    return sorted(_FLOW_REGISTRY)


class FlowRule:
    """One whole-program rule: sees the linked program and effect sets."""

    code: str = "D1xx"
    name: str = ""
    hint: str = ""

    def check(self, program: Program, effects: EffectResult) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(self, program: Program, module: str, line: int, message: str) -> Finding:
        return Finding(
            path=program.path_of(module),
            line=line,
            col=0,
            code=self.code,
            message=message,
            hint=self.hint,
        )


def _origin_sanctioned(program: Program, origin_module: str) -> bool:
    summary = program.summaries.get(origin_module)
    if summary is None:
        return False
    posix = summary.path.replace("\\", "/")
    if any(posix.endswith(suffix) for suffix in _SANCTIONED_ORIGIN_SUFFIXES):
        return True
    anchored = "/" + posix
    return any(f"/{d}/" in anchored for d in _SANCTIONED_ORIGIN_DIRS)


def _short(qual: str, program: Program) -> str:
    """``module:fn`` display form of a fully-qualified function."""
    module = program.module_of(qual)
    if module and qual.startswith(module + "."):
        return f"{module}:{qual[len(module) + 1:]}"
    return qual


def _entry_chain(reach: dict, qual: str, program: Program, limit: int = 6) -> str:
    """Discovery path root -> ... -> qual from a reachability map."""
    hops = [qual]
    current = qual
    for _ in range(64):
        via, _line = reach.get(current, (None, None))
        if via is None:
            break
        hops.append(via)
        current = via
    hops.reverse()
    shown = [_short(h, program) for h in hops]
    if len(shown) > limit:
        shown = shown[:2] + ["..."] + shown[-(limit - 3):]
    return " -> ".join(shown)


def _effect_chain(effects: EffectResult, qual: str, kind: str, program: Program, target=None) -> str:
    hops = effects.chain(qual, kind, target)
    parts = []
    for hop_qual, module, line, detail in hops:
        parts.append(f"{_short(hop_qual, program)}:{line}")
    if hops:
        parts[-1] += f" ({hops[-1][3]})"
    return " -> ".join(parts)


@register_flow
class WorkerPurityRule(FlowRule):
    """D101: code reachable from a worker entry point must not mutate
    module-global state owned by other (parent-side) modules.

    Worker entry points are functions dispatched through pool spawn
    methods (``apply_async``/``submit``/``map*``), pool ``initializer=``
    targets, and anything annotated ``# repro: worker-entry``.  Globals
    living in the *spawning* module itself are worker-local replica
    context and allowed.  A callee declared ``# repro: effects=pure`` or
    ``worker-safe`` terminates the audit (D104 verifies the declaration).
    """

    code = "D101"
    name = "worker-context-purity"
    hint = (
        "emit a seq-tagged op for the parent to replay, or declare the callee "
        "'# repro: effects=worker-safe' if its mutation is worker-local by design"
    )

    def check(self, program: Program, effects: EffectResult) -> Iterable[Finding]:
        roots = program.worker_roots
        if not roots:
            return
        spawn_modules = {program.module_of(r) for r in roots if program.module_of(r)}
        reach = reachable_from(program, roots)
        for qual in sorted(reach):
            module = program.module_of(qual)
            fn = program.function(qual)
            if module is None or fn is None:
                continue
            # (a) direct mutation of a module global outside the spawn module.
            base_targets = fn.base_effects.get(MUTATES_GLOBAL, {}).get("targets", {})
            if module not in spawn_modules:
                for target, witness in sorted(base_targets.items()):
                    yield self.finding(
                        program,
                        module,
                        witness["line"],
                        (
                            f"worker-reachable {_short(qual, program)} mutates "
                            f"module global {target!r} ({witness['detail']}); "
                            f"reached via {_entry_chain(reach, qual, program)}"
                        ),
                    )
            # (b) method call mutating a module-global instance elsewhere.
            for edge in program.edges_from(qual):
                if edge.recv_global is None or edge.kind == "spawn":
                    continue
                owner_module = edge.recv_global.split(":", 1)[0]
                if owner_module in spawn_modules:
                    continue
                callee_fn = program.function(edge.callee)
                if callee_fn is None or trusted(callee_fn):
                    continue
                mutates = (
                    MUTATES_SELF in effects.of(edge.callee)
                    or MUTATES_SELF in callee_fn.base_effects
                )
                if not mutates:
                    continue
                yield self.finding(
                    program,
                    module,
                    edge.line,
                    (
                        f"worker-reachable {_short(qual, program)} calls "
                        f"{_short(edge.callee, program)} which mutates parent-owned "
                        f"global {edge.recv_global.replace(':', '.')}; "
                        f"reached via {_entry_chain(reach, qual, program)}"
                    ),
                )


@register_flow
class ArtifactTaintRule(FlowRule):
    """D102: nondeterminism must not reach an artifact writer.

    Sinks are functions that *directly* write — a write-mode ``open()``
    or a call to ``atomic_write`` (every psrs/golden-SERP/metrics/
    checkpoint path goes through it).  A sink whose transitive effect set
    carries wallclock / raw-RNG / ``id()`` / unordered-iteration taint
    would embed unreproducible bytes in an artifact.  Taint originating
    in the observability layer (manifest timestamps) is sanctioned,
    mirroring D003's exemption.
    """

    code = "D102"
    name = "artifact-writer-taint"
    hint = (
        "derive artifact content from seeded streams / simulated time only; "
        "manifest stamps belong in repro.obs"
    )

    def check(self, program: Program, effects: EffectResult) -> Iterable[Finding]:
        for qual in sorted(program.functions):
            module, fn = program.functions[qual]
            if not self._is_sink(program, qual, fn):
                continue
            for kind in TAINT_KINDS:
                rec = effects.of(qual).get(kind)
                if rec is None:
                    continue
                if _origin_sanctioned(program, rec["origin_module"]):
                    continue
                yield self.finding(
                    program,
                    module,
                    fn.lineno,
                    (
                        f"artifact writer {_short(qual, program)} is tainted by "
                        f"{kind}: {_effect_chain(effects, qual, kind, program)}"
                    ),
                )

    @staticmethod
    def _is_sink(program: Program, qual: str, fn) -> bool:
        witness = fn.base_effects.get("io")
        if witness is not None and witness["detail"].startswith("open:"):
            return True
        for edge in program.edges_from(qual):
            if edge.callee.rsplit(".", 1)[-1] == "atomic_write":
                return True
        return False


@register_flow
class MergeOrderRule(FlowRule):
    """D103: no unordered iteration on the canonical merge path.

    The seq-ordered merge (PR 6) replays worker ops in a globally sorted
    order; any set iteration reachable from a function annotated
    ``# repro: merge-root`` can reorder ops between runs and break
    byte-identity at ``--jobs > 1``.
    """

    code = "D103"
    name = "merge-path-ordering"
    hint = "sort the collection (sorted(...)) before iterating on the merge path"

    def check(self, program: Program, effects: EffectResult) -> Iterable[Finding]:
        roots = program.merge_roots
        if not roots:
            return
        reach = reachable_from(program, roots)
        for qual in sorted(reach):
            module = program.module_of(qual)
            fn = program.function(qual)
            if module is None or fn is None:
                continue
            witness = fn.base_effects.get(UNORDERED_ITER)
            if witness is None:
                continue
            yield self.finding(
                program,
                module,
                witness["line"],
                (
                    f"unordered iteration in {_short(qual, program)} "
                    f"({witness['detail']}) is reachable from merge root "
                    f"{_entry_chain(reach, qual, program)}"
                ),
            )


@register_flow
class ContractRule(FlowRule):
    """D104: declared effect contracts must match inferred effects.

    ``# repro: effects=pure`` forbids every effect kind;
    ``# repro: effects=worker-safe`` permits receiver/argument mutation
    (asserted worker-local) but no global mutation or nondeterminism.
    The fixpoint *trusts* declarations, so this rule is what keeps a
    stale annotation from silently sanctioning a whole call subtree.
    """

    code = "D104"
    name = "effect-contract"
    hint = "fix the function or the annotation; waive with allow-D104 plus the invariant that makes it safe"

    def check(self, program: Program, effects: EffectResult) -> Iterable[Finding]:
        for module, summary in sorted(program.summaries.items()):
            for err in summary.errors:
                if err.get("kind") == "annotation":
                    yield self.finding(program, module, err["line"], err["message"])
            for qual_local in sorted(summary.functions):
                fn = summary.functions[qual_local]
                if fn.declared is None:
                    continue
                qual = f"{module}.{qual_local}"
                line = fn.declared_line or fn.lineno
                if fn.declared not in CONTRACTS:
                    yield self.finding(
                        program,
                        module,
                        line,
                        (
                            f"unknown effect contract {fn.declared!r} on "
                            f"{_short(qual, program)}; use one of {', '.join(CONTRACTS)}"
                        ),
                    )
                    continue
                forbidden = CONTRACT_FORBIDS[fn.declared]
                for kind in sorted(set(effects.kinds(qual)) & forbidden):
                    yield self.finding(
                        program,
                        module,
                        line,
                        (
                            f"{_short(qual, program)} declares effects={fn.declared} "
                            f"but is inferred to have {kind}: "
                            f"{_effect_chain(effects, qual, kind, program)}"
                        ),
                    )


@register_flow
class StreamAliasRule(FlowRule):
    """D105: one seeded RNG stream drawn from two modules.

    ``RandomStreams.get(name)`` returns the *same* seeded generator for a
    given (namespace, name); two modules sharing one stream couple their
    draw sequences — inserting a draw in one silently shifts the other,
    the exact failure class the per-stream discipline exists to prevent.
    Dynamic (per-instance) ``child(f"...")`` namespaces are skipped: they
    cannot alias across modules.
    """

    code = "D105"
    name = "rng-stream-aliasing"
    hint = "give each module its own stream name or a .child(...) namespace"

    def check(self, program: Program, effects: EffectResult) -> Iterable[Finding]:
        grouped: Dict[tuple, list] = {}
        for site in program.stream_sites:
            grouped.setdefault((site.namespace, site.name), []).append(site)
        for (namespace, name), sites in sorted(grouped.items()):
            modules = sorted({s.module for s in sites})
            if len(modules) < 2:
                continue
            owner = modules[0]
            label = f"{namespace}/{name}" if namespace else name
            for site in sorted(sites, key=lambda s: (s.module, s.line)):
                if site.module == owner:
                    continue
                yield self.finding(
                    program,
                    site.module,
                    site.line,
                    (
                        f"stream {label!r} drawn here in {_short(site.qual, program)} "
                        f"is also drawn in module {owner} — two modules share one "
                        f"seeded sequence"
                    ),
                )
