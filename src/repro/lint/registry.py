"""Rule registry: stable-code -> rule-class mapping and selection.

Rule modules register themselves at import time via :func:`register`;
:func:`all_rules` imports the :mod:`repro.lint.rules` package (whose
``__init__`` imports every rule module) so the registry is always fully
populated before instantiation.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Sequence, Type

from repro.lint.core import META_CODE, Rule

_REGISTRY: Dict[str, Type[Rule]] = {}

_CODE_RE = re.compile(r"^D\d{3}$")


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the registry (codes are unique)."""
    code = cls.code
    if not _CODE_RE.match(code) or code == META_CODE:
        raise ValueError(f"rule code {code!r} is not a valid D-code")
    existing = _REGISTRY.get(code)
    if existing is not None and existing is not cls:
        raise ValueError(f"rule code {code} already registered by {existing.__name__}")
    _REGISTRY[code] = cls
    return cls


def _load_rule_modules() -> None:
    # Imported for side effects: each module's @register call.
    import repro.lint.rules  # noqa: F401


def registered_codes() -> List[str]:
    _load_rule_modules()
    return sorted(_REGISTRY)


def all_rules() -> List[Rule]:
    """One instance of every registered rule, in code order."""
    _load_rule_modules()
    return [_REGISTRY[code]() for code in sorted(_REGISTRY)]


def select_rules(codes: Optional[Sequence[str]] = None) -> List[Rule]:
    """Rules for the given codes (all rules when ``codes`` is falsy).

    Raises ``ValueError`` for codes that do not exist, so a typoed
    ``--select`` fails loudly instead of silently linting nothing.
    """
    rules = all_rules()
    if not codes:
        return rules
    wanted = {code.strip().upper() for code in codes if code.strip()}
    known = {rule.code for rule in rules}
    unknown = sorted(wanted - known)
    if unknown:
        raise ValueError(
            f"unknown rule code(s): {', '.join(unknown)} "
            f"(known: {', '.join(sorted(known))})"
        )
    return [rule for rule in rules if rule.code in wanted]
