"""Web substrate: domains, sites, pages, and HTTP-like fetch semantics.

This models just enough of the web for the paper's measurement pipeline:
URLs resolve through a registry of sites; fetches carry a visitor profile
(browser vs. search-engine crawler, rendering vs. not, search referrer or
direct) because cloaking decisions key off exactly those signals; seized
domains intercept every fetch with a seizure-notice page.
"""

from repro.web.urls import Url, parse_url
from repro.web.domains import Domain, DomainRegistry, SeizureRecord
from repro.web.fetch import VisitorProfile, Response, USER, SEARCH_USER, CRAWLER, RENDERING_CRAWLER
from repro.web.sites import Site, SiteKind, Page, StaticPage
from repro.web.hosting import Web, FetchError
from repro.web.render import render_document, execute_script

__all__ = [
    "Url",
    "parse_url",
    "Domain",
    "DomainRegistry",
    "SeizureRecord",
    "VisitorProfile",
    "Response",
    "USER",
    "SEARCH_USER",
    "CRAWLER",
    "RENDERING_CRAWLER",
    "Site",
    "SiteKind",
    "Page",
    "StaticPage",
    "Web",
    "FetchError",
    "render_document",
    "execute_script",
]
