"""The legitimate background web.

Two populations matter to the study:

* **ranking competitors** — legitimate sites that fill the SERPs doorways
  must displace (press, review blogs, actual resellers);
* **the compromise pool** — legitimate sites with accrued authority that
  campaigns hack into doorways (most doorways are compromised sites,
  Section 5.2.2: "most doorways are hacked sites").

Legitimate pages never cloak: they return identical content to users and
crawlers, which is what keeps the cloaking-based PSR definition free of
false positives (Section 4.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.html.builder import PageBuilder
from repro.util.ids import slugify
from repro.util.rng import RandomStreams
from repro.util.simtime import SimDate
from repro.web.hosting import Web
from repro.web.naming import NameForge
from repro.web.sites import Site, SiteKind, StaticPage


@dataclass
class LegitPageSpec:
    """A legitimate page plus its term relevances for the index."""

    site: Site
    path: str
    relevances: Dict[str, float] = field(default_factory=dict)


def _legit_page_html(host: str, topic: str, seed_rng) -> str:
    page = PageBuilder(title=f"{topic.title()} — {host}")
    page.meta("description", f"{topic} coverage and reviews from {host}")
    main = page.div(cls="article")
    main.add("h1", text=f"{topic.title()} guide")
    for _ in range(seed_rng.randint(2, 5)):
        main.add(
            "p",
            text=(
                f"Everything you need to know about {topic}: comparisons, "
                "pricing history, and where to buy from authorized retailers."
            ),
        )
    page.link("/about.html", "About us")
    return page.html()


class BackgroundWebBuilder:
    """Creates the legitimate web for a scenario."""

    def __init__(self, web: Web, streams: RandomStreams, forge: NameForge, epoch: SimDate):
        self.web = web
        self._streams = streams.child("population")
        self._forge = forge
        #: Legit sites predate the study window.
        self.epoch = epoch

    def build_competitors(
        self,
        vertical_name: str,
        terms: Sequence[str],
        site_count: int,
        candidates_per_term: int,
    ) -> List[LegitPageSpec]:
        """Legitimate sites that compete in one vertical's SERPs.

        Each site hosts a few topical pages; each term draws its candidate
        set from the vertical's pages so SERPs have ~``candidates_per_term``
        legitimate entries.
        """
        rng = self._streams.get(f"competitors:{slugify(vertical_name)}")
        pages: List[LegitPageSpec] = []
        for _ in range(site_count):
            domain = self.web.domains.register(self._forge.legit_domain(), self.epoch)
            # Commercial-term SERPs are crowded with strong sites (brand
            # pages, big retailers, review press) plus a long middling tail.
            authority = min(1.0, rng.betavariate(4.2, 2.2))
            site = Site(domain, SiteKind.LEGITIMATE, authority=authority, created_on=self.epoch)
            self.web.add_site(site)
            page_count = rng.randint(1, 3)
            for index in range(page_count):
                path = "/" if index == 0 else f"/{slugify(vertical_name)}-{index}.html"
                topic = vertical_name.lower()
                html = _legit_page_html(site.host, topic, rng)
                site.add_page(StaticPage(path, html=html))
                pages.append(LegitPageSpec(site=site, path=path))
        # Spread term relevance across the vertical's pages.
        for term in terms:
            chosen = rng.sample(pages, min(candidates_per_term, len(pages)))
            for spec in chosen:
                spec.relevances[term] = rng.uniform(0.45, 1.0)
        return pages

    def build_compromise_pool(self, count: int) -> List[Site]:
        """Hackable legitimate sites with real accrued authority."""
        rng = self._streams.get("compromise-pool")
        pool: List[Site] = []
        for _ in range(count):
            domain = self.web.domains.register(self._forge.legit_domain(), self.epoch)
            # Hackable sites skew toward middling personal/small-business
            # blogs; the occasional strong host is the prize compromise.
            authority = min(1.0, rng.betavariate(2.2, 2.6) + 0.12)
            site = Site(domain, SiteKind.LEGITIMATE, authority=authority, created_on=self.epoch)
            topic = rng.choice(("travel", "cooking", "photography", "gardening",
                                "parenting", "fitness", "music", "woodworking"))
            site.add_page(StaticPage("/", html=_legit_page_html(site.host, topic, rng)))
            self.web.add_site(site)
            pool.append(site)
        return pool
