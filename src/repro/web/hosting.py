"""The simulated web: site registry and fetch semantics.

:meth:`Web.fetch` is the single entry point every consumer uses — the search
engine's indexer, the Dagger/VanGogh measurement crawlers, simulated users,
and the brand-protection firms' investigators.  It resolves redirects,
and routes fetches of seized domains to their seizure-notice page.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from time import perf_counter

from repro.util.perf import PERF
from repro.util.simtime import SimDate
from repro.web.domains import DomainRegistry
from repro.web.fetch import PageResult, Response, VisitorProfile
from repro.web.sites import Site, SiteKind
from repro.web.urls import Url, parse_url

MAX_REDIRECTS = 8

_FETCH_TIMER = PERF.handle("web.fetch")


class FetchError(Exception):
    """Raised for malformed URLs; unreachable hosts return 404/502 instead."""


class Web:
    """Registry of sites plus fetch resolution."""

    def __init__(self, domains: Optional[DomainRegistry] = None):
        self.domains = domains if domains is not None else DomainRegistry()
        self._sites: Dict[str, Site] = {}
        #: Builds the notice page served for a seized domain; installed by
        #: the seizure intervention machinery.
        self.seizure_notice_builder: Optional[Callable[[str, SimDate], PageResult]] = None
        #: Optional :class:`repro.faults.injector.FaultInjector` attached by
        #: the study runner.  :meth:`fetch` itself never consults it — the
        #: simulation's own consumers (indexer, users) must see ground
        #: truth; only :class:`repro.faults.retry.ResilientFetcher` (the
        #: measurement path) reads it.  It lives here so a checkpointed
        #: world carries its fault configuration across resume.
        self.fault_injector = None

    def add_site(self, site: Site) -> Site:
        if site.host in self._sites:
            raise ValueError(f"host {site.host!r} already has a site")
        self._sites[site.host] = site
        return site

    def get_site(self, host: str) -> Optional[Site]:
        return self._sites.get(host.lower())

    def sites(self, kind: Optional[SiteKind] = None) -> List[Site]:
        """Sites (optionally filtered by kind), sorted by host so the
        listing never depends on registration order."""
        selected = (
            s for s in self._sites.values() if kind is None or s.kind == kind
        )
        return sorted(selected, key=lambda s: s.host)

    def __len__(self) -> int:
        return len(self._sites)

    def _respond_once(self, url: Url, profile: VisitorProfile, day: SimDate) -> PageResult:
        domain = self.domains.get(url.host)
        if domain is not None and domain.seized_as_of(day):
            record = domain.seizure
            if record is not None and not record.shows_notice:
                return PageResult(status=502)
            if self.seizure_notice_builder is not None:
                return self.seizure_notice_builder(url.host, day)
            return PageResult(html="<html><body><h1>Seized</h1></body></html>")
        site = self._sites.get(url.host)
        if site is None:
            return PageResult(status=404)
        if day < site.created_on:
            return PageResult(status=404)
        page = site.get_page(url.path)
        if page is None:
            return PageResult(status=404)
        return page.respond(profile, day)

    def fetch(self, raw_url: str, profile: VisitorProfile, day) -> Response:
        """Fetch a URL as the given visitor, following redirects.

        Referrers propagate the way browsers do: the first hop carries the
        profile's referrer (e.g., a Google SERP), subsequent hops carry the
        redirecting URL.
        """
        start = perf_counter()
        try:
            return self._fetch(raw_url, profile, day)
        finally:
            _FETCH_TIMER.add(perf_counter() - start)

    def _fetch(self, raw_url: str, profile: VisitorProfile, day) -> Response:
        day = SimDate(day)
        try:
            url = parse_url(raw_url)
        except ValueError as exc:
            raise FetchError(str(exc)) from exc
        chain = [str(url)]
        current_profile = profile
        result = self._respond_once(url, current_profile, day)
        hops = 0
        while result.redirect_to is not None:
            hops += 1
            if hops > MAX_REDIRECTS:
                return Response(
                    status=508, url=raw_url, final_url=chain[-1], redirect_chain=chain
                )
            current_profile = profile.with_referrer(chain[-1])
            try:
                url = parse_url(result.redirect_to)
            except ValueError:
                return Response(
                    status=502, url=raw_url, final_url=result.redirect_to,
                    redirect_chain=chain,
                )
            chain.append(str(url))
            result = self._respond_once(url, current_profile, day)
        return Response(
            status=result.status,
            url=raw_url,
            final_url=chain[-1],
            html=result.html,
            cookies=result.cookies,
            redirect_chain=chain,
        )
