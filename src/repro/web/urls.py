"""Tiny URL model.

We only need scheme/host/path/query and a couple of predicates (root URL,
same-registered-domain), so this avoids dragging in urllib semantics the
simulator does not use.
"""

from __future__ import annotations

from typing import Dict, NamedTuple


class Url(NamedTuple):
    scheme: str
    host: str
    path: str
    query: str

    def __str__(self) -> str:
        url = f"{self.scheme}://{self.host}{self.path}"
        if self.query:
            url += f"?{self.query}"
        return url

    @property
    def is_root(self) -> bool:
        """True for the site root (the only URL Google's "hacked" label
        covers, per Section 3.2.1)."""
        return self.path in ("", "/") and not self.query

    def root(self) -> "Url":
        return Url(self.scheme, self.host, "/", "")

    def with_path(self, path: str, query: str = "") -> "Url":
        if not path.startswith("/"):
            path = "/" + path
        return Url(self.scheme, self.host, path, query)

    def query_params(self) -> Dict[str, str]:
        params: Dict[str, str] = {}
        if not self.query:
            return params
        for pair in self.query.split("&"):
            key, _, value = pair.partition("=")
            if key:
                params[key] = value
        return params


def parse_url(raw: str) -> Url:
    """Parse an absolute http(s) URL string into a :class:`Url`.

    >>> parse_url("http://doorway.com/?key=cheap+beats")
    Url(scheme='http', host='doorway.com', path='/', query='key=cheap+beats')
    """
    scheme, sep, rest = raw.partition("://")
    if not sep:
        raise ValueError(f"not an absolute URL: {raw!r}")
    scheme = scheme.lower()
    if scheme not in ("http", "https"):
        raise ValueError(f"unsupported scheme {scheme!r} in {raw!r}")
    host, slash, tail = rest.partition("/")
    host = host.lower()
    if not host:
        raise ValueError(f"missing host in {raw!r}")
    path = "/" + tail if slash else "/"
    path, _, query = path.partition("?")
    return Url(scheme, host, path or "/", query)


def registered_domain(host: str) -> str:
    """Collapse a hostname to its registered domain (naive two-label rule;
    our synthetic namespace has no public-suffix subtleties).

    >>> registered_domain("shop.cocovipbags.com")
    'cocovipbags.com'
    """
    labels = host.lower().split(".")
    if len(labels) <= 2:
        return host.lower()
    return ".".join(labels[-2:])
