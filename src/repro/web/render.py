"""A miniature JavaScript renderer.

Iframe cloaking runs entirely on the client and "relies on the assumption
that crawlers do not fully render pages at scale" (Section 3.1.1, footnote).
Detecting it therefore requires executing page JavaScript.  Real campaigns
obfuscate the script; our generated kits obfuscate within a small JS subset,
and this module implements an honest interpreter for that subset:

* ``var x = <expr>;`` / ``x = <expr>;`` / ``x += <expr>;``
* string literals, ``+`` concatenation, ``String.fromCharCode(..)``,
  ``unescape("%xx..")``, ``[.."s1","s2"..].join("")``
* ``document.write(<expr>);``
* ``var e = document.createElement('iframe'); e.src = ..;
  document.body.appendChild(e);``

Anything outside the subset is ignored (as a batch crawler's lightweight
renderer would time out or skip), never raising into the crawl loop.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.html.nodes import Document, Element
from repro.html.parser import parse_html


@dataclass
class ScriptEffects:
    """Observable DOM mutations from running a page's scripts."""

    written_html: List[str] = field(default_factory=list)
    appended_elements: List[Element] = field(default_factory=list)

    def merged_into(self, other: "ScriptEffects") -> None:
        other.written_html.extend(self.written_html)
        other.appended_elements.extend(self.appended_elements)


class _Lexer:
    """Character-wise splitter that respects string literals."""

    def __init__(self, code: str):
        self.code = code

    def statements(self) -> List[str]:
        out: List[str] = []
        buf: List[str] = []
        quote: Optional[str] = None
        i = 0
        code = self.code
        while i < len(code):
            ch = code[i]
            if quote is not None:
                buf.append(ch)
                if ch == "\\" and i + 1 < len(code):
                    buf.append(code[i + 1])
                    i += 2
                    continue
                if ch == quote:
                    quote = None
            elif ch in "'\"":
                quote = ch
                buf.append(ch)
            elif ch in ";\n":
                stmt = "".join(buf).strip()
                if stmt:
                    out.append(stmt)
                buf = []
            else:
                buf.append(ch)
            i += 1
        stmt = "".join(buf).strip()
        if stmt:
            out.append(stmt)
        return out


_STRING_RE = re.compile(r"""('(?:\\.|[^'\\])*'|"(?:\\.|[^"\\])*")""")
_FROMCHARCODE_RE = re.compile(r"String\.fromCharCode\(([\d,\s]*)\)")
_UNESCAPE_RE = re.compile(r"unescape\(\s*(['\"])(.*?)\1\s*\)")
_JOIN_RE = re.compile(r"\[([^\]]*)\]\.join\(\s*(?:''|\"\")\s*\)")
_IDENT_RE = re.compile(r"^[A-Za-z_$][\w$]*$")


def _unquote(literal: str) -> str:
    body = literal[1:-1]
    return (
        body.replace("\\'", "'")
        .replace('\\"', '"')
        .replace("\\\\", "\\")
        .replace("\\n", "\n")
    )


def _decode_percent(text: str) -> str:
    def sub(match: "re.Match[str]") -> str:
        return chr(int(match.group(1), 16))

    return re.sub(r"%([0-9a-fA-F]{2})", sub, text)


def _eval_expr(expr: str, env: Dict[str, str]) -> Optional[str]:
    """Evaluate a string-producing expression; None if outside the subset."""
    expr = expr.strip()
    if not expr:
        return None

    # Reduce builtin calls to string literals first.
    def charcode_sub(match: "re.Match[str]") -> str:
        codes = [int(c) for c in match.group(1).replace(" ", "").split(",") if c]
        return "'" + "".join(chr(c) for c in codes).replace("'", "\\'") + "'"

    expr = _FROMCHARCODE_RE.sub(charcode_sub, expr)
    expr = _UNESCAPE_RE.sub(
        lambda m: "'" + _decode_percent(m.group(2)).replace("'", "\\'") + "'", expr
    )

    def join_sub(match: "re.Match[str]") -> str:
        items = _STRING_RE.findall(match.group(1))
        joined = "".join(_unquote(s) for s in items)
        return "'" + joined.replace("'", "\\'") + "'"

    expr = _JOIN_RE.sub(join_sub, expr)

    # Now the expression must be terms joined by top-level '+'.
    terms = _split_concat(expr)
    if terms is None:
        return None
    parts: List[str] = []
    for term in terms:
        term = term.strip()
        if _STRING_RE.fullmatch(term):
            parts.append(_unquote(term))
        elif _IDENT_RE.match(term) and term in env:
            parts.append(env[term])
        else:
            return None
    return "".join(parts)


def _split_concat(expr: str) -> Optional[List[str]]:
    """Split an expression on '+' operators outside string literals."""
    terms: List[str] = []
    buf: List[str] = []
    quote: Optional[str] = None
    i = 0
    while i < len(expr):
        ch = expr[i]
        if quote is not None:
            buf.append(ch)
            if ch == "\\" and i + 1 < len(expr):
                buf.append(expr[i + 1])
                i += 2
                continue
            if ch == quote:
                quote = None
        elif ch in "'\"":
            quote = ch
            buf.append(ch)
        elif ch == "+":
            terms.append("".join(buf))
            buf = []
        else:
            buf.append(ch)
        i += 1
    if quote is not None:
        return None
    terms.append("".join(buf))
    return terms


_CREATE_RE = re.compile(
    r"(?:var\s+)?([A-Za-z_$][\w$]*)\s*=\s*document\.createElement\(\s*(['\"])(\w+)\2\s*\)"
)
_SETPROP_RE = re.compile(r"([A-Za-z_$][\w$]*)\.(\w+)\s*=\s*(.+)$")
_SETATTR_RE = re.compile(
    r"([A-Za-z_$][\w$]*)\.setAttribute\(\s*(['\"])(\w+)\2\s*,\s*(.+)\)\s*$"
)
_APPEND_RE = re.compile(r"document\.body\.appendChild\(\s*([A-Za-z_$][\w$]*)\s*\)")
_WRITE_RE = re.compile(r"document\.write(?:ln)?\((.*)\)\s*$", re.DOTALL)
_ASSIGN_RE = re.compile(r"^(?:var\s+|let\s+|const\s+)?([A-Za-z_$][\w$]*)\s*(\+?=)\s*(.+)$", re.DOTALL)

#: element properties that map straight onto HTML attributes
_ELEMENT_PROPS = {"src", "width", "height", "id", "name", "frameborder", "scrolling", "style"}


def execute_script(code: str, env: Optional[Dict[str, str]] = None) -> ScriptEffects:
    """Run one script's code, returning its DOM effects."""
    effects = ScriptEffects()
    variables: Dict[str, str] = dict(env or {})
    elements: Dict[str, Element] = {}
    for stmt in _Lexer(code).statements():
        match = _CREATE_RE.search(stmt)
        if match:
            elements[match.group(1)] = Element(match.group(3))
            continue
        match = _APPEND_RE.search(stmt)
        if match:
            element = elements.get(match.group(1))
            if element is not None:
                effects.appended_elements.append(element)
            continue
        match = _WRITE_RE.search(stmt)
        if match:
            value = _eval_expr(match.group(1), variables)
            if value is not None:
                effects.written_html.append(value)
            continue
        match = _SETATTR_RE.match(stmt)
        if match and match.group(1) in elements:
            value = _eval_expr(match.group(4), variables)
            if value is not None:
                elements[match.group(1)].attrs[match.group(3).lower()] = value
            continue
        match = _SETPROP_RE.match(stmt)
        if match and match.group(1) in elements:
            prop = match.group(2).lower()
            if prop in _ELEMENT_PROPS:
                value = _eval_expr(match.group(3), variables)
                if value is not None:
                    elements[match.group(1)].attrs[prop] = value
            continue
        match = _ASSIGN_RE.match(stmt)
        if match:
            name, op, rhs = match.group(1), match.group(2), match.group(3)
            value = _eval_expr(rhs, variables)
            if value is not None:
                if op == "+=":
                    variables[name] = variables.get(name, "") + value
                else:
                    variables[name] = value
            continue
        # Unknown statement: skip, as a lightweight renderer would.
    return effects


def render_document(doc: Document) -> Document:
    """Execute every script in the document and apply DOM effects.

    Returns a *new* Document whose body includes elements produced by
    ``document.write`` and ``appendChild`` — the view VanGogh inspects.
    """
    rendered = parse_html(doc.to_html())
    body = rendered.body if rendered.body is not None else rendered.root
    for script in rendered.find_all("script"):
        code = script.text_content()
        if not code.strip():
            continue
        effects = execute_script(code)
        for chunk in effects.written_html:
            fragment = parse_html(chunk)
            fragment_body = fragment.body if fragment.body is not None else fragment.root
            for child in list(fragment_body.children):
                body.append(child)
        for element in effects.appended_elements:
            body.append(element)
    return rendered
