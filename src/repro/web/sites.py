"""Sites and pages.

A :class:`Site` occupies a domain and serves :class:`Page` objects by path.
Page content is produced per-request because cloaking makes the response a
function of the visitor profile and of mutable campaign state (e.g., where
the doorway currently redirects after a seizure).
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, List, Optional

from repro.util.simtime import SimDate
from repro.web.domains import Domain
from repro.web.fetch import PageResult, VisitorProfile


class SiteKind(enum.Enum):
    """What a site fundamentally is, for ground-truth bookkeeping.

    The measurement pipeline never reads this; it must infer roles from
    fetched content, as the paper's crawlers did.
    """

    LEGITIMATE = "legitimate"
    COMPROMISED = "compromised"  # legit site hosting injected doorway pages
    DEDICATED_DOORWAY = "dedicated_doorway"
    STOREFRONT = "storefront"
    SEIZURE_NOTICE = "seizure_notice"
    SUPPLIER = "supplier"


class Page:
    """Abstract page: subclasses implement :meth:`respond`."""

    def __init__(self, path: str):
        if not path.startswith("/"):
            raise ValueError(f"page path must start with '/': {path!r}")
        self.path = path

    def respond(self, profile: VisitorProfile, day: SimDate) -> PageResult:
        raise NotImplementedError


class StaticPage(Page):
    """A page with fixed HTML (possibly lazily generated once).

    Generator output is memoized behind an explicit sentinel — not the
    old "re-run while the string is falsy" check, which quietly invoked
    empty-rendering generators on *every* access.  ``content_version``
    counts regenerations monotonically, so identity-keyed consumers (the
    content-addressed caches key on the HTML itself and don't need it)
    can tell a rebuilt template from the original.
    """

    def __init__(self, path: str, html: str = "", generator: Optional[Callable[[], str]] = None,
                 cookies: tuple = ()):
        super().__init__(path)
        if generator is None and not html:
            raise ValueError("StaticPage needs html or a generator")
        self._html = html
        self._generated = generator is None or bool(html)
        self._generator = generator
        self._cookies = tuple(cookies)
        #: Bumped by :meth:`regenerate`; starts at 1 (the first content).
        self.content_version = 1

    @property
    def html(self) -> str:
        if not self._generated:
            self._html = self._generator()
            self._generated = True
        return self._html

    def regenerate(self) -> int:
        """Drop the memoized content and bump ``content_version``.

        The next :attr:`html` access re-invokes the generator (template
        rotation); pages built from literal HTML just bump the version.
        Returns the new version."""
        if self._generator is not None:
            self._html = ""
            self._generated = False
        self.content_version += 1
        return self.content_version

    def respond(self, profile: VisitorProfile, day: SimDate) -> PageResult:
        return PageResult(html=self.html, cookies=self._cookies)


class DynamicPage(Page):
    """A page whose response is computed by a callable each request."""

    def __init__(self, path: str, responder: Callable[[VisitorProfile, SimDate], PageResult]):
        super().__init__(path)
        self._responder = responder

    def respond(self, profile: VisitorProfile, day: SimDate) -> PageResult:
        return self._responder(profile, day)


class Site:
    """A collection of pages on one domain."""

    def __init__(self, domain: Domain, kind: SiteKind, authority: float = 0.0,
                 created_on: Optional[SimDate] = None):
        self.domain = domain
        self.kind = kind
        #: Search-engine reputation in [0, 1]; compromised doorways inherit
        #: the host site's accrued authority (Section 2).
        self.authority = authority
        self.created_on = created_on or domain.registered_on
        self._pages: Dict[str, Page] = {}

    @property
    def host(self) -> str:
        return self.domain.name

    def add_page(self, page: Page) -> Page:
        if page.path in self._pages:
            raise ValueError(f"duplicate path {page.path!r} on {self.host}")
        self._pages[page.path] = page
        return page

    def replace_page(self, page: Page) -> Page:
        self._pages[page.path] = page
        return page

    def get_page(self, path: str) -> Optional[Page]:
        return self._pages.get(path)

    def pages(self) -> List[Page]:
        """All pages on the site, sorted by path."""
        return sorted(self._pages.values(), key=lambda p: p.path)

    def paths(self) -> List[str]:
        return sorted(self._pages)

    def url(self, path: str = "/") -> str:
        if not path.startswith("/"):
            path = "/" + path
        return f"http://{self.host}{path}"

    def __repr__(self) -> str:
        return f"Site({self.host!r}, {self.kind.value}, pages={len(self._pages)})"
