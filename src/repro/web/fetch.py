"""Visitor profiles and fetch responses.

Cloaking keys off exactly three request-side signals (Section 3.1.1):
whether the User-Agent self-identifies as a search crawler, whether the
visit arrived through a search-results referrer, and whether the client
executes JavaScript (iframe cloaking relies on crawlers not rendering).
A :class:`VisitorProfile` bundles those signals.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

CRAWLER_USER_AGENTS = (
    "Googlebot/2.1 (+http://www.google.com/bot.html)",
    "Mozilla/5.0 (compatible; bingbot/2.0)",
)
BROWSER_USER_AGENT = "Mozilla/5.0 (Windows NT 6.1; WOW64) AppleWebKit/537.36"

#: Known crawler IP prefixes some SEO kits match against (footnote 1).
CRAWLER_IP_PREFIXES = ("66.249.", "157.55.")

#: Synthetic statuses for fetch attempts that failed before a response
#: arrived (injected timeouts, refused connections, open breakers).  Real
#: HTTP never produces them, so consumers can tell them apart from the
#: simulated web's organic 404/502s.
STATUS_TIMEOUT = 598
STATUS_UNREACHABLE = 599


@dataclass(frozen=True)
class VisitorProfile:
    """The request-side identity a page sees."""

    user_agent: str = BROWSER_USER_AGENT
    ip_address: str = "203.0.113.7"
    referrer: str = ""
    renders_js: bool = True

    @property
    def looks_like_crawler(self) -> bool:
        agent = self.user_agent.lower()
        if "googlebot" in agent or "bingbot" in agent or "bot/" in agent:
            return True
        return any(self.ip_address.startswith(p) for p in CRAWLER_IP_PREFIXES)

    @property
    def via_search(self) -> bool:
        return "google." in self.referrer or "bing." in self.referrer

    def with_referrer(self, referrer: str) -> "VisitorProfile":
        return replace(self, referrer=referrer)


#: A normal user browsing directly (no search referrer).
USER = VisitorProfile()
#: A user who clicked through a Google search result.
SEARCH_USER = VisitorProfile(referrer="https://www.google.com/search?q=...")
#: A search-engine crawler that does not render JavaScript.
CRAWLER = VisitorProfile(
    user_agent=CRAWLER_USER_AGENTS[0], ip_address="66.249.64.1", renders_js=False
)
#: A measurement crawler that renders pages (VanGogh's HtmlUnit analogue).
RENDERING_CRAWLER = VisitorProfile(referrer="https://www.google.com/search?q=...", renders_js=True)


@dataclass
class Response:
    """Result of fetching a URL, after following redirects."""

    status: int
    url: str
    final_url: str
    html: str = ""
    #: Cookie names the landing site sets (store detection, Section 4.1.3).
    cookies: Tuple[str, ...] = ()
    headers: Dict[str, str] = field(default_factory=dict)
    #: Every URL traversed, in order, including the first and last.
    redirect_chain: List[str] = field(default_factory=list)
    #: Injected-fault tag (see :mod:`repro.faults.injector`), or None.
    #: Set alongside a failure status for lost fetches, or alongside 200
    #: for delivered-but-damaged bodies (truncated/garbled).  Always None
    #: on organic responses, so fault handling never alters clean runs.
    fault: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status == 200

    @property
    def redirected(self) -> bool:
        return len(self.redirect_chain) > 1

    def __repr__(self) -> str:
        return f"Response({self.status}, {self.url!r} -> {self.final_url!r})"


@dataclass
class PageResult:
    """What a single page returns for one request, before redirect
    resolution: either content or a redirect to another URL."""

    html: str = ""
    redirect_to: Optional[str] = None
    status: int = 200
    cookies: Tuple[str, ...] = ()
