"""Domain registration, WHOIS, and seizure state.

Domains are the unit of seizure: a brand-holder court case transfers the
name, after which every fetch of any URL on it lands on the seizure-notice
page (Section 3.2.2).  Registration dates feed the lifetime analyses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.util.simtime import SimDate


@dataclass
class SeizureRecord:
    """Outcome of a court case applied to a single domain."""

    day: SimDate
    case_id: str
    firm: str
    brand: str
    #: Domains co-listed in the same court case (the analysis reads these
    #: off the serving-notice page, exactly as the paper did in §5.3).
    co_seized: List[str] = field(default_factory=list)
    #: Some seized sites are simply shut down instead of showing a notice.
    shows_notice: bool = True


@dataclass
class Domain:
    """A registered domain name."""

    name: str
    registered_on: SimDate
    registrar: str = "cheap-names-llc"
    registrant: str = "privacy-protected"
    seizure: Optional[SeizureRecord] = None

    @property
    def is_seized(self) -> bool:
        return self.seizure is not None

    def seized_as_of(self, day: SimDate) -> bool:
        return self.seizure is not None and self.seizure.day <= day

    def seize(self, record: SeizureRecord) -> None:
        if self.seizure is not None:
            raise ValueError(f"domain {self.name} already seized by case {self.seizure.case_id}")
        if record.day < self.registered_on:
            raise ValueError(f"cannot seize {self.name} before registration")
        self.seizure = record

    def __hash__(self) -> int:
        return hash(self.name)


class DomainRegistry:
    """All domains known to the simulated web."""

    def __init__(self):
        self._domains: Dict[str, Domain] = {}

    def register(
        self,
        name: str,
        day: SimDate,
        registrar: str = "cheap-names-llc",
        registrant: str = "privacy-protected",
    ) -> Domain:
        name = name.lower()
        if name in self._domains:
            raise ValueError(f"domain {name!r} already registered")
        domain = Domain(name, day, registrar, registrant)
        self._domains[name] = domain
        return domain

    def get(self, name: str) -> Optional[Domain]:
        return self._domains.get(name.lower())

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._domains

    def __len__(self) -> int:
        return len(self._domains)

    def all(self) -> List[Domain]:
        """Every registered domain, sorted by name (not registration order,
        so consumers cannot silently depend on insertion order)."""
        return sorted(self._domains.values(), key=lambda d: d.name)

    def seized(self, as_of: Optional[SimDate] = None) -> List[Domain]:
        """Seized domains (optionally as of a day), sorted by name."""
        return sorted(
            (
                domain
                for domain in self._domains.values()
                if domain.seizure is not None
                and (as_of is None or domain.seizure.day <= as_of)
            ),
            key=lambda d: d.name,
        )
