"""Domain name generation.

Produces plausible, unique domain names for storefronts ("cocovipbags.com"),
doorways, and the legitimate background web, deterministically from the
scenario seed.
"""

from __future__ import annotations


from repro.util.ids import slugify
from repro.util.rng import RandomStreams
from repro.web.domains import DomainRegistry

_STORE_WORDS = (
    "vip", "top", "best", "mall", "shop", "outlet", "store", "online",
    "cheap", "sale", "love", "hot", "star", "super", "mega", "gold",
)
_TLDS = (".com", ".com", ".com", ".net", ".org", ".co", ".biz")
_LEGIT_WORDS = (
    "daily", "city", "review", "style", "fashion", "trend", "buyer",
    "guide", "forum", "blog", "news", "market", "planet", "world",
    "club", "zone", "press", "journal", "digest", "weekly",
)


class NameForge:
    """Unique, deterministic domain names."""

    def __init__(self, streams: RandomStreams, registry: DomainRegistry):
        self._streams = streams.child("names")
        self._registry = registry
        self._issued = set()

    def _unique(self, stream: str, candidates) -> str:
        rng = self._streams.get(stream)
        for _ in range(1000):
            name = candidates(rng)
            if name not in self._issued and name not in self._registry:
                self._issued.add(name)
                return name
        raise RuntimeError(f"could not find a free domain name on stream {stream!r}")

    def store_domain(self, brand: str, locale: str = "") -> str:
        """e.g. 'louisvuittonvipmall.com', optionally locale-tagged ('-uk')."""
        stem = slugify(brand).replace("-", "")[:12]

        def make(rng) -> str:
            words = rng.sample(_STORE_WORDS, 2)
            suffix = f"{locale}" if locale and rng.random() < 0.7 else ""
            digits = str(rng.randint(2, 99)) if rng.random() < 0.35 else ""
            tld = rng.choice(_TLDS)
            return f"{stem}{words[0]}{words[1]}{suffix}{digits}{tld}"

        return self._unique(f"store:{stem}:{locale}", make)

    def doorway_domain(self) -> str:
        """Dedicated doorway names are cheap throwaways."""

        def make(rng) -> str:
            a = rng.choice(_LEGIT_WORDS)
            b = rng.choice(_STORE_WORDS)
            return f"{a}{b}{rng.randint(100, 9999)}{rng.choice(_TLDS)}"

        return self._unique("doorway", make)

    def legit_domain(self) -> str:
        def make(rng) -> str:
            a = rng.choice(_LEGIT_WORDS)
            b = rng.choice(_LEGIT_WORDS)
            if a == b:
                b = rng.choice(_STORE_WORDS)
            digits = str(rng.randint(1, 999)) if rng.random() < 0.3 else ""
            return f"{a}{b}{digits}{rng.choice(_TLDS)}"

        return self._unique("legit", make)

    def cnc_domain(self, campaign: str) -> str:
        stem = slugify(campaign).replace("-", "")[:10]

        def make(rng) -> str:
            return f"{stem}cdn{rng.randint(10, 99)}.net"

        return self._unique(f"cnc:{stem}", make)
