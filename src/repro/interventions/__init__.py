"""Interventions against SEO campaigns (Section 3.2).

Two pressure points, applied at different strata of the business:

* **Search** (:mod:`repro.interventions.search_ops`) — the engine's
  anti-abuse team demotes doorways and attaches "hacked" labels.
* **Seizure** (:mod:`repro.interventions.seizure`) — brand-protection firms
  file periodic bulk court cases that seize storefront domains and replace
  them with serving-notice pages.
"""

from repro.interventions.search_ops import SearchQualityTeam, SearchOpsPolicy, ScriptedDemotion
from repro.interventions.seizure import (
    BrandProtectionFirm,
    CourtCase,
    SeizurePolicy,
    SeizureAuthority,
)
from repro.interventions.notices import build_notice_page, parse_notice_page, NoticeInfo
from repro.interventions.payments import (
    PaymentPolicy,
    PaymentInterventionTeam,
    TestPurchase,
    ProcessorTermination,
)

__all__ = [
    "SearchQualityTeam",
    "SearchOpsPolicy",
    "ScriptedDemotion",
    "BrandProtectionFirm",
    "CourtCase",
    "SeizurePolicy",
    "SeizureAuthority",
    "build_notice_page",
    "parse_notice_page",
    "NoticeInfo",
    "PaymentPolicy",
    "PaymentInterventionTeam",
    "TestPurchase",
    "ProcessorTermination",
]
