"""Seizure serving-notice pages.

When a brand holder seizes a storefront domain, the registry points it at a
notice page naming the court case and — crucially for measurement — listing
the other domains seized in the same case.  The paper mined these embedded
court documents to count nearly 40,000 seized domains (Section 5.3.1); our
crawler does the same through :func:`parse_notice_page`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.html.builder import PageBuilder
from repro.perf.cache import LRUCache, parse_html_cached


@dataclass
class NoticeInfo:
    """Structured contents of a seizure notice page."""

    case_id: str
    firm: str
    brand: str
    domain: str
    co_seized: List[str]


def build_notice_page(info: NoticeInfo) -> str:
    """Render the serving-notice page for one seized domain."""
    page = PageBuilder(title=f"Domain Seized — Case {info.case_id}")
    page.meta("robots", "noindex")
    banner = page.div(cls="seizure-banner", id_="seizure-notice")
    banner.add("h1", text="This domain name has been seized")
    banner.add(
        "p",
        {"class": "notice-body"},
        text=(
            f"The domain {info.domain} has been seized pursuant to an order "
            f"issued in case {info.case_id}, on behalf of {info.brand}."
        ),
    )
    banner.add("p", {"class": "firm", "data-firm": info.firm}, text=f"Served by {info.firm}")
    docket = page.div(cls="court-documents", id_="docket")
    docket.add("h2", text="Schedule A — Defendant Domain Names")
    listing = docket.add("ol", {"class": "seized-domains"})
    for name in info.co_seized:
        listing.add("li", {"class": "seized-domain"}, text=name)
    return page.html()


#: Both outcomes cache: every crawled landing page gets a notice check, so
#: the (far more common) ``None`` verdicts are worth remembering too.
_NOTICE_CACHE = LRUCache("notice", maxsize=16384, persistent=True)


def parse_notice_page(html: str) -> Optional[NoticeInfo]:
    """Recover case metadata from a notice page; None if not a notice.

    Content-addressed: repeated parses of an identical notice (every
    co-seized domain in a case serves the same schedule) share one
    NoticeInfo — read-only to callers, like every cached value."""
    return _NOTICE_CACHE.memo_html(html, _parse_notice_page)


def _parse_notice_page(html: str) -> Optional[NoticeInfo]:
    doc = parse_html_cached(html)
    banner = None
    for el in doc.iter():
        if el.get("id") == "seizure-notice":
            banner = el
            break
    if banner is None:
        return None
    case_id = ""
    brand = ""
    domain = ""
    body_text = ""
    for p in banner.find_all("p"):
        if p.get("class") == "notice-body":
            body_text = p.text_content()
    # "The domain X has been seized pursuant to an order issued in case C,
    #  on behalf of B."
    if " has been seized" in body_text:
        domain = body_text.split(" has been seized")[0].replace("The domain ", "").strip()
    if "in case " in body_text:
        tail = body_text.split("in case ", 1)[1]
        case_id = tail.split(",", 1)[0].strip()
    if "on behalf of " in body_text:
        brand = body_text.split("on behalf of ", 1)[1].rstrip(". ").strip()
    firm = ""
    for el in doc.iter():
        if "data-firm" in el.attrs:
            firm = el.attrs["data-firm"]
            break
    co_seized = [
        li.text_content().strip()
        for li in doc.find_all("li")
        if li.get("class") == "seized-domain"
    ]
    if not case_id:
        return None
    return NoticeInfo(case_id=case_id, firm=firm, brand=brand, domain=domain, co_seized=co_seized)
