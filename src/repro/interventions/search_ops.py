"""Search-engine-side interventions.

Models the anti-abuse pipeline behind Google's two observable actions
(Section 3.2.1): attaching the "hacked" warning label to compromised sites
(root results only, by policy) and demoting or deindexing doorways.

Labeling follows the paper's measurements: only a minority of doorways ever
get labeled (2.5% of PSRs carried the label), and those that do are labeled
13-32 days after they start appearing — so detection is modeled as a
per-doorway coin flip at creation plus a lognormal delay, rather than a
flat hazard that would label everything eventually.

Scripted demotions reproduce campaign-level penalization events like the
KEY campaign's collapse in mid-December 2013 (Section 5.2.1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.util.rng import RandomStreams
from repro.util.simtime import SimDate
from repro.search.serp import ResultLabel


@dataclass(frozen=True)
class ScriptedDemotion:
    """A planned campaign-wide penalization."""

    campaign: str
    day: SimDate
    amount: float = 2.5  # enough to push doorways out of the top 100
    also_label: bool = True


@dataclass
class SearchOpsPolicy:
    """Tunable knobs of the search-side intervention (ablation surface)."""

    #: Probability a doorway host ever gets detected and labeled "hacked".
    #: Detection keys off what Google can see ranking: doorways whose root
    #: is itself cloaked get caught far more often than subpage-only ones.
    label_fraction: float = 0.012
    label_fraction_root_injected: float = 0.55
    #: Lognormal delay (days) from doorway creation to labeling; the
    #: defaults put the bulk of delays in the paper's 13-32 day window.
    label_delay_median_days: float = 21.0
    label_delay_sigma: float = 0.45
    #: Ranking penalty applied alongside a label (mild: the paper observed
    #: labeled results still ranking — labeling warns users, it does not
    #: necessarily demote).
    demote_on_label: float = 0.1
    #: Daily probability a spammy host is independently demoted hard.
    hard_demotion_hazard_per_day: float = 0.0012
    hard_demotion_amount: float = 2.5
    #: Whether labels apply to root results only (the paper's observed
    #: policy; set False for the ablation of Section 5.2.2).
    label_root_only: bool = True
    #: Apply warnings as malware-style interstitials instead of the
    #: clickable "hacked" subtitle — Section 3.2.1 flags this as a policy
    #: choice, not a technical limit; GSB blocks the click, "hacked" merely
    #: warns.  Ablation lever.
    label_with_interstitial: bool = False


@dataclass
class LabelEvent:
    host: str
    day: SimDate
    campaign: str


@dataclass
class _PendingLabel:
    due: SimDate
    host: str
    campaign: str


class SearchQualityTeam:
    """Runs the daily detection sweep and executes scripted actions."""

    def __init__(
        self,
        policy: SearchOpsPolicy,
        streams: RandomStreams,
        scripted: Optional[List[ScriptedDemotion]] = None,
    ):
        self.policy = policy
        self._rng = streams.child("search-ops").get("sweep")
        self.scripted = sorted(scripted or [], key=lambda s: s.day.ordinal)
        self._scripted_done = 0
        self._decided: set = set()
        self._pending: List[_PendingLabel] = []
        self._labeled: Dict[str, SimDate] = {}
        self._demoted: Dict[str, SimDate] = {}
        #: Campaigns under a standing penalty: once the team fingerprints a
        #: campaign, newly appearing doorways are demoted on sight.
        self._campaign_penalties: Dict[str, float] = {}
        self.label_events: List[LabelEvent] = []

    def on_day(self, world, day: SimDate) -> None:
        engine = world.engine
        engine.label_root_only = self.policy.label_root_only
        self._run_scripted(world, day)
        self._sweep(world, day)
        self._apply_due_labels(world, day)

    # ------------------------------------------------------------------ #

    def _run_scripted(self, world, day: SimDate) -> None:
        while self._scripted_done < len(self.scripted):
            action = self.scripted[self._scripted_done]
            if action.day > day:
                break
            self._scripted_done += 1
            campaign = world.campaign_by_name(action.campaign)
            if campaign is None:
                continue
            self._campaign_penalties[action.campaign] = action.amount
            for doorway in campaign.doorways:
                world.engine.demote_host(doorway.host, day, action.amount)
                self._demoted.setdefault(doorway.host, day)
                if action.also_label and doorway.host not in self._labeled:
                    # Scripted actions label roughly half the fleet, as seen
                    # for KEY ("labeling half of the remaining as hacked").
                    if self._rng.random() < 0.5:
                        self._label(world, doorway.host, day, campaign.name)
            world.record_demotion(action.campaign, day, action.amount)

    def _sweep(self, world, day: SimDate) -> None:
        policy = self.policy
        mu = math.log(policy.label_delay_median_days)
        for campaign, doorway in world.active_doorways():
            host = doorway.host
            if doorway.created_on > day:
                continue
            standing = self._campaign_penalties.get(campaign.name)
            if standing is not None and host not in self._demoted:
                # The fingerprint follows the campaign: new doorways get
                # demoted as soon as the sweep sees them.
                world.engine.demote_host(host, day, standing)
                self._demoted[host] = day
            if host not in self._decided:
                self._decided.add(host)
                fraction = (
                    policy.label_fraction_root_injected
                    if getattr(doorway, "root_injected", False)
                    else policy.label_fraction
                )
                if self._rng.random() < fraction:
                    delay = self._rng.lognormvariate(mu, policy.label_delay_sigma)
                    due = doorway.created_on + max(2, int(round(delay)))
                    self._pending.append(
                        _PendingLabel(due=due, host=host, campaign=campaign.name)
                    )
            if host not in self._demoted and self._rng.random() < policy.hard_demotion_hazard_per_day:
                world.engine.demote_host(host, day, policy.hard_demotion_amount)
                self._demoted[host] = day

    def _apply_due_labels(self, world, day: SimDate) -> None:
        still_pending: List[_PendingLabel] = []
        for pending in self._pending:
            if pending.due > day:
                still_pending.append(pending)
                continue
            if pending.host not in self._labeled:
                self._label(world, pending.host, day, pending.campaign)
                if self.policy.demote_on_label > 0:
                    world.engine.demote_host(pending.host, day, self.policy.demote_on_label)
        self._pending = still_pending

    def _label(self, world, host: str, day: SimDate, campaign_name: str) -> None:
        label = (
            ResultLabel.MALWARE
            if self.policy.label_with_interstitial
            else ResultLabel.HACKED
        )
        world.engine.label_host(host, day, label)
        self._labeled[host] = day
        self.label_events.append(LabelEvent(host=host, day=day, campaign=campaign_name))

    # ------------------------------------------------------------------ #

    def labeled_hosts(self) -> Dict[str, SimDate]:
        return dict(self._labeled)

    def label_day_of(self, host: str) -> Optional[SimDate]:
        return self._labeled.get(host)
