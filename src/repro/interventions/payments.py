"""Payment-processing intervention.

Section 4.3.2: the paper's purchases cleared through just three acquiring
banks and concluded that "this concentration suggests payment processing is
another viable area for interventions as in [24], but investigating such an
intervention remains future work."  This module is that future work, built
on the mechanism [24] (McCoy et al., *Priceless*) documented for pharma:
brand holders make undercover test purchases, identify the acquiring
bank/processor from the transaction BIN, and pressure the card networks to
terminate the merchant accounts.

Model: the intervention team makes periodic test purchases at stores seen
in search results; once a processor accumulates enough confirmed
counterfeit transactions, it is blacklisted — every store clearing through
it stops completing sales until its campaign re-signs with a surviving
processor (which takes days and can be repeated until processors run out).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.util.rng import RandomStreams
from repro.util.simtime import SimDate


@dataclass
class PaymentPolicy:
    """Knobs of the payment intervention."""

    #: Day the program starts; None disables it.
    start_day: Optional[SimDate] = None
    #: Test purchases attempted per week across monitored stores.
    test_purchases_per_week: int = 6
    #: Confirmed counterfeit transactions before a processor is terminated.
    termination_threshold: int = 8
    #: Days between evidence reaching threshold and the network acting.
    action_delay_days: int = 10


@dataclass
class TestPurchase:
    """One undercover buy: store, processor, bank — the BIN evidence."""

    day: SimDate
    store_host: str
    processor: str
    bank: str


@dataclass
class ProcessorTermination:
    processor: str
    day: SimDate
    evidence_count: int


class PaymentInterventionTeam:
    """Runs test purchases and terminates processors at the card network."""

    def __init__(self, policy: PaymentPolicy, streams: RandomStreams):
        self.policy = policy
        self._rng = streams.child("payments-intervention").get("buys")
        self.purchases: List[TestPurchase] = []
        self.terminations: List[ProcessorTermination] = []
        self._evidence: Dict[str, int] = {}
        self._pending_action: Dict[str, SimDate] = {}

    def on_day(self, world, day: SimDate) -> None:
        if self.policy.start_day is None or day < self.policy.start_day:
            return
        self._make_test_purchases(world, day)
        self._act_on_evidence(world, day)

    # ------------------------------------------------------------------ #

    def _make_test_purchases(self, world, day: SimDate) -> None:
        weekday = day.to_date().weekday()
        if weekday != 2:  # buy in a weekly batch, midweek
            return
        candidates = []
        for store in world.stores():
            host = store.host_on(day)
            if host is None:
                continue
            domain = world.web.domains.get(host)
            if domain is not None and domain.seized_as_of(day):
                continue
            candidates.append(store)
        if not candidates:
            return
        count = min(self.policy.test_purchases_per_week, len(candidates))
        for store in self._rng.sample(candidates, count):
            processor = store.processor
            self.purchases.append(
                TestPurchase(
                    day=day,
                    store_host=store.host_on(day) or "",
                    processor=processor.name,
                    bank=processor.bank.name,
                )
            )
            if world.payment_network.is_blacklisted(processor.name):
                continue
            self._evidence[processor.name] = self._evidence.get(processor.name, 0) + 1
            if (
                self._evidence[processor.name] >= self.policy.termination_threshold
                and processor.name not in self._pending_action
            ):
                self._pending_action[processor.name] = day + self.policy.action_delay_days

    def _act_on_evidence(self, world, day: SimDate) -> None:
        due = [name for name, when in self._pending_action.items() if when <= day]
        for name in due:
            del self._pending_action[name]
            if world.payment_network.is_blacklisted(name):
                continue
            world.payment_network.blacklist(name)
            self.terminations.append(
                ProcessorTermination(
                    processor=name, day=day,
                    evidence_count=self._evidence.get(name, 0),
                )
            )
            world.events.record(
                "processor_termination", day,
                processor=name, evidence=self._evidence.get(name, 0),
            )

    # ------------------------------------------------------------------ #

    def banks_observed(self) -> Set[str]:
        """Distinct acquiring banks seen in test-purchase BINs (the paper
        saw three)."""
        return {p.bank for p in self.purchases}
