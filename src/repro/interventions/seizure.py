"""Brand-holder domain seizures.

Brand holders contract brand-protection firms (Greer Burns & Crain and
SMGPA in the paper's data) who file periodic *bulk* court cases — hundreds
of domains at a time, months apart for most brands, bi-weekly for a few
aggressive ones (Section 5.3).  The asymmetries the paper highlights are
all modeled: a legal lag between filing and execution, discovery limited to
stores that have actually surfaced in search results, a minimum observed
age before a store makes it into a filing, and seizures targeting the
*storefront* domain (doorways are compromised third parties and carry
liability, footnote 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.util.rng import RandomStreams
from repro.util.simtime import SimDate
from repro.web.domains import SeizureRecord
from repro.interventions.notices import NoticeInfo, build_notice_page


@dataclass
class SeizurePolicy:
    """Knobs of the seizure intervention (ablation surface)."""

    #: Days between consecutive case filings for a given brand.
    case_interval_days: int = 75
    #: Per-brand cadence overrides (e.g., Uggs/Chanel bi-weekly, Oakley monthly).
    brand_interval_overrides: Dict[str, int] = field(default_factory=dict)
    #: Max *crawl-monitored* storefront domains listed per case.  Most of a
    #: real case's Schedule A never intersects the measurement crawl (the
    #: paper observed 290 of ~40,000 seized domains), so cases are padded
    #: with external domains below.
    batch_size: int = 40
    #: Domains per case discovered through channels outside the monitored
    #: verticals (test buys, marketplace sweeps, other TLD monitors).
    external_domains_per_case: int = 0
    #: Probability a brand actually files when its cadence comes due
    #: (litigation budgets are finite).
    enforcement_probability: float = 1.0
    #: Days between filing a case and the seizure taking effect.
    legal_delay_days: int = 14
    #: A store must have been visible in SERPs at least this long before the
    #: firm's investigators include it in a filing.
    min_observed_age_days: int = 35
    #: Fraction of seized sites that display a serving-notice page (the rest
    #: are simply shut down).
    notice_fraction: float = 0.92
    #: Also seize *dedicated* doorway domains (footnote 6's alternative).
    #: Compromised doorways stay off-limits — seizing an innocent third
    #: party's domain carries liability.  Off by default, as in reality.
    seize_dedicated_doorways: bool = False
    #: Cap on doorway domains listed per case when the above is enabled.
    doorways_per_case: int = 10


@dataclass
class CourtCase:
    """One legal action seizing a batch of domains for one brand."""

    case_id: str
    firm: str
    brand: str
    filed_on: SimDate
    executed_on: SimDate
    domains: List[str]

    def __post_init__(self):
        if self.executed_on < self.filed_on:
            raise ValueError("case executed before filing")
        if not self.domains:
            raise ValueError("a case must list at least one domain")


class SeizureAuthority:
    """Executes seizures against the domain registry and serves notices."""

    def __init__(self, web):
        self.web = web
        self._notices: Dict[str, NoticeInfo] = {}
        web.seizure_notice_builder = self._notice_builder

    def execute(self, case: CourtCase, policy: SeizurePolicy, rng) -> List[str]:
        """Seize every (still-unseized) domain in the case; returns the
        domains actually seized."""
        seized: List[str] = []
        for name in case.domains:
            domain = self.web.domains.get(name)
            if domain is None or domain.is_seized:
                continue
            shows_notice = rng.random() < policy.notice_fraction
            record = SeizureRecord(
                day=case.executed_on,
                case_id=case.case_id,
                firm=case.firm,
                brand=case.brand,
                co_seized=list(case.domains),
                shows_notice=shows_notice,
            )
            domain.seize(record)
            if shows_notice:
                self._notices[name] = NoticeInfo(
                    case_id=case.case_id,
                    firm=case.firm,
                    brand=case.brand,
                    domain=name,
                    co_seized=list(case.domains),
                )
            seized.append(name)
        return seized

    def _notice_builder(self, host: str, day: SimDate):
        from repro.web.fetch import PageResult

        info = self._notices.get(host)
        if info is None:
            return PageResult(html="<html><body><h1>Seized</h1></body></html>")
        return PageResult(html=build_notice_page(info))


class BrandProtectionFirm:
    """A GBC/SMGPA-style firm filing bulk seizure cases for client brands."""

    def __init__(
        self,
        name: str,
        clients: Sequence[str],
        policy: SeizurePolicy,
        streams: RandomStreams,
        authority: SeizureAuthority,
        docket_prefix: str = "14-cv",
    ):
        self.name = name
        self.clients = list(clients)
        self.policy = policy
        self.authority = authority
        self._streams = streams.child(f"firm:{name}")
        self._rng = self._streams.get("cases")
        self.docket_prefix = docket_prefix
        self._case_counter = 0
        self._next_filing: Dict[str, SimDate] = {}
        self._pending: List[CourtCase] = []
        self.docket: List[CourtCase] = []

    def _interval_for(self, brand: str) -> int:
        return self.policy.brand_interval_overrides.get(brand, self.policy.case_interval_days)

    def on_day(self, world, day: SimDate) -> None:
        self._file_cases(world, day)
        self._execute_due(world, day)

    def _file_cases(self, world, day: SimDate) -> None:
        for brand in self.clients:
            due = self._next_filing.get(brand)
            if due is None:
                # First filing lands part-way into the brand's first interval.
                offset = self._rng.randint(10, max(11, self._interval_for(brand)))
                self._next_filing[brand] = day + offset
                continue
            if day < due:
                continue
            self._next_filing[brand] = day + self._interval_for(brand)
            if self._rng.random() > self.policy.enforcement_probability:
                continue
            targets = self._discover_targets(world, brand, day)
            if not targets:
                continue
            targets = targets + self._discover_doorway_targets(world, brand, day)
            targets = targets + self._external_targets(world, brand, day)
            self._case_counter += 1
            case = CourtCase(
                case_id=f"{self.docket_prefix}-{self._case_counter:04d}-{self.name.lower()}",
                firm=self.name,
                brand=brand,
                filed_on=day,
                executed_on=day + self.policy.legal_delay_days,
                domains=targets,
            )
            self._pending.append(case)

    def _discover_targets(self, world, brand: str, day: SimDate) -> List[str]:
        """Investigators pick storefront domains observed selling the brand
        that have been visible long enough to document."""
        candidates: List[str] = []
        for sighting in world.store_sightings(brand):
            if sighting.first_seen + self.policy.min_observed_age_days > day:
                continue
            domain = world.web.domains.get(sighting.host)
            if domain is None or domain.is_seized:
                continue
            if any(sighting.host in case.domains for case in self._pending):
                continue
            candidates.append(sighting.host)
        self._rng.shuffle(candidates)
        return candidates[: self.policy.batch_size]

    def _discover_doorway_targets(self, world, brand: str, day: SimDate) -> List[str]:
        """Dedicated doorway domains promoting the brand's counterfeits
        (only when the policy enables footnote 6's alternative)."""
        if not self.policy.seize_dedicated_doorways:
            return []
        candidates: List[str] = []
        for campaign, doorway in world.active_doorways():
            if doorway.compromised:
                continue  # innocent third party: liability
            if doorway.created_on + self.policy.min_observed_age_days > day:
                continue
            store = world.landing_store_of(doorway.host)
            if store is None or brand not in store.brands:
                continue
            domain = world.web.domains.get(doorway.host)
            if domain is None or domain.is_seized:
                continue
            if any(doorway.host in case.domains for case in self._pending):
                continue
            candidates.append(doorway.host)
        self._rng.shuffle(candidates)
        return candidates[: self.policy.doorways_per_case]

    def _external_targets(self, world, brand: str, day: SimDate) -> List[str]:
        """Register and list domains found outside the monitored crawl.

        These stand in for the bulk of a real Schedule A: counterfeit
        storefronts the firm's own investigators found through channels our
        measurement crawl does not cover.  They exist in the registry (so
        the seizure is real) but never appear in monitored SERPs."""
        count = self.policy.external_domains_per_case
        if count <= 0:
            return []
        names: List[str] = []
        for _ in range(count):
            name = world.forge.store_domain(brand)
            world.register_domain(name, day)
            names.append(name)
        return names

    def _execute_due(self, world, day: SimDate) -> None:
        still_pending: List[CourtCase] = []
        for case in self._pending:
            if case.executed_on > day:
                still_pending.append(case)
                continue
            seized = self.authority.execute(case, self.policy, self._rng)
            self.docket.append(case)
            world.record_seizure_case(self, case, seized, day)
        self._pending = still_pending

    # ------------------------------------------------------------------ #

    def total_domains_seized(self) -> int:
        return sum(len(case.domains) for case in self.docket)

    def cases_for_brand(self, brand: str) -> List[CourtCase]:
        return [case for case in self.docket if case.brand == brand]
