"""Table 1: per-vertical PSRs, doorways, stores, campaigns.

Paper totals: 2,773,044 PSRs, 27,008 doorways, 7,484 stores, 52 campaigns;
Louis Vuitton is the largest vertical by PSRs, Clarisonic the smallest by
doorways.  At benchmark scale the absolute counts shrink ~100x; the rank
order and skew are what must reproduce.
"""

from repro.analysis import DailyAggregates, vertical_table
from repro.reporting import render_table

from benchlib import print_comparison

#: Table 1's published rows: vertical -> (psrs, doorways, stores, campaigns).
PAPER_TABLE1 = {
    "Abercrombie": (117_319, 2_059, 786, 35),
    "Adidas": (102_694, 1_275, 462, 22),
    "Beats By Dre": (342_674, 2_425, 506, 16),
    "Clarisonic": (10_726, 243, 148, 6),
    "Ed Hardy": (99_167, 1_828, 648, 31),
    "Golf": (11_257, 679, 318, 20),
    "Isabel Marant": (153_927, 2_356, 1_150, 35),
    "Louis Vuitton": (523_368, 5_462, 1_246, 34),
    "Moncler": (454_671, 3_566, 912, 38),
    "Nike": (180_953, 3_521, 1_141, 32),
    "Ralph Lauren": (74_893, 1_276, 648, 27),
    "Sunglasses": (93_928, 3_585, 1_269, 34),
    "Tiffany": (37_054, 1_015, 432, 22),
    "Uggs": (405_518, 4_966, 1_015, 39),
    "Watches": (109_016, 3_615, 1_470, 35),
    "Woolrich": (55_879, 1_924, 888, 38),
}


def test_table1_vertical_census(benchmark, paper_study):
    aggregates = DailyAggregates(paper_study.dataset)
    rows = benchmark(vertical_table, paper_study.dataset, aggregates)

    by_name = {r.vertical: r for r in rows}
    print()
    print(render_table(
        ["Vertical", "# PSRs", "# Doorways", "# Stores", "# Campaigns"],
        [[r.vertical, r.psrs, r.doorways, r.stores, r.campaigns] for r in rows],
        title="Table 1 (measured, scaled scenario)",
    ))
    total_psrs = sum(r.psrs for r in rows)
    total_doorways = len(paper_study.dataset.doorway_hosts())
    total_stores = len(paper_study.dataset.store_hosts())
    print_comparison(
        "Table 1 totals",
        [
            ("PSRs", "2,773,044", f"{total_psrs:,}"),
            ("doorway domains", "27,008", f"{total_doorways:,}"),
            ("stores", "7,484", f"{total_stores:,}"),
            ("verticals monitored", "16", str(len(rows))),
        ],
    )

    # Shape assertions: all verticals observed, heavy/light ordering holds.
    assert len(rows) == 16
    psrs = {name: row.psrs for name, row in by_name.items()}
    heavy = ("Louis Vuitton", "Moncler", "Uggs", "Beats By Dre")
    light = ("Clarisonic", "Golf")
    for heavy_vertical in heavy:
        for light_vertical in light:
            assert psrs[heavy_vertical] > psrs[light_vertical], (
                heavy_vertical, light_vertical
            )
    # Every vertical is contested by multiple campaigns.
    assert all(row.campaigns >= 2 for row in rows)
