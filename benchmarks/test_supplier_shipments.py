"""Section 4.5: supply-side shipment records.

Paper: 279K shipping records scraped over nine months via the supplier's
bulk order-status lookup; 256K delivered, 4K seized at source, 15K seized
at destination, 1,319 returned; US (90K), Japan (57K), Australia (39K) the
top destinations, >81% including Western Europe.
"""

from repro.analysis.supplier import supplier_summary

from benchlib import print_comparison


def test_supplier_shipment_census(benchmark, paper_study):
    supplier = paper_study.supplier
    assert supplier is not None

    records = benchmark(supplier.scrape_all)
    summary = supplier_summary(records)

    top3 = sorted(summary.by_destination.items(), key=lambda kv: -kv[1])[:3]
    print_comparison(
        "Section 4.5 supplier scrape",
        [
            ("records", "279K over 9 months", f"{summary.total_records:,}"),
            ("delivered", "256K (91.8%)",
             f"{summary.delivered:,} ({summary.delivery_rate:.1%})"),
            ("seized at source", "4K",
             f"{summary.seized_at_source:,}"),
            ("seized at destination", "15K",
             f"{summary.seized_at_destination:,}"),
            ("returned", "1,319", f"{summary.returned:,}"),
            ("top destinations", "US 90K / JP 57K / AU 39K",
             " / ".join(f"{c} {n:,}" for c, n in top3)),
            ("US+JP+AU+W.Europe share", ">81%",
             f"{summary.top_regions_fraction:.0%}"),
        ],
    )

    # Shape assertions.
    assert summary.total_records > 1000
    assert summary.delivery_rate > 0.88
    assert summary.seized_at_destination > summary.seized_at_source
    assert summary.returned < summary.delivered * 0.02
    assert [c for c, _ in top3] == ["US", "JP", "AU"]
    assert summary.top_regions_fraction > 0.78

    # The scrape interface itself respects the 20-id bulk limit.
    import pytest
    with pytest.raises(ValueError):
        supplier.lookup(list(range(21)))

    # MSVALIDATE's completed orders route through this supplier.
    campaigns = {r.campaign for r in records}
    assert "MSVALIDATE" in campaigns
