"""Microbenchmark: columnar SERP serving vs. the seed's scalar loop.

Builds the ecosystem at the default benchmark scale (the same
``paper_preset`` the table/figure benchmarks use), advances 60 days of
campaign and intervention state so the index carries doorways, penalties,
and labels, then serves monitored terms through

* ``scalar_serp`` — a line-faithful copy of the pre-columnar engine's
  scoring loop, including its per-entry dataclass results and id()-keyed
  static-score cache, and
* ``SearchEngine.serp`` — the columnar path under test.

The two must agree field-for-field — identical ordering and labels,
bit-exact scores (``NoiseSource.for_serp`` delivers the batch stream one
scalar draw at a time) — before any timing is trusted; the comparison
then lands in ``BENCH_serp.json`` (see ``benchlib.write_bench_json``).

Both the equivalence pass and the scalar-vs-columnar timing run under
``caches_disabled()``: with the per-(term, day) SERP memo live, every
repeat serve is a dict hit and the 'columnar' column would measure the
cache, not the scoring path.  A third pass then times the memoized serve
with caches on — that number (and its hit counters) lands in the JSON as
``memo_us_per_serp``.

No absolute-time assertions: CI boxes vary.  The speedup *ratio* is
asserted only at the default scale, with a floor well under the target so
noisy neighbours cannot flake the suite; the measured ratio is what the
JSON records.
"""

from __future__ import annotations

import gc
import os
import statistics
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.ecosystem import paper_preset
from repro.ecosystem.simulator import Simulator
from repro.perf.cache import caches_disabled
from repro.search.engine import SearchEngine
from repro.search.index import IndexedEntry, no_seo_signal
from repro.search.serp import ResultLabel
from repro.util.perf import PERF
from repro.util.simtime import SimDate

from benchlib import print_comparison, write_bench_json

#: Default benchmark scale — mirrors benchmarks/conftest.py.  The CI perf
#: smoke overrides these down via environment variables.
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.25"))
TERMS_PER_VERTICAL = int(os.environ.get("REPRO_BENCH_TERMS", "8"))
AT_DEFAULT_SCALE = "REPRO_BENCH_SCALE" not in os.environ
WARMUP_DAYS = 60
TIMING_REPS = int(os.environ.get("REPRO_BENCH_REPS", "20"))


@dataclass
class _SeedResult:
    """The seed engine's SearchResult was a dataclass; the reference loop
    keeps paying its construction cost to stay a faithful 'before'."""

    rank: int
    url: str
    host: str
    path: str
    label: ResultLabel
    score: float
    entry: Optional[IndexedEntry]


def scalar_serp(
    engine: SearchEngine,
    static_cache: Dict[int, float],
    term: str,
    day,
) -> List[_SeedResult]:
    """The pre-columnar ``SearchEngine.serp`` body, verbatim in structure:
    per-entry gauss noise, python-level scoring, key-lambda sort, host-cap
    fill.  Reads the live engine's state so both paths rank the same
    world."""
    day = SimDate(day)
    gauss = engine._noise.for_serp(term, day)
    w_seo = engine.ranking.w_seo
    w_auth = engine.ranking.w_authority
    w_rel = engine.ranking.w_relevance
    penalties = engine._penalties
    scored: List[Tuple[float, IndexedEntry]] = []
    for entry in engine.index.candidates(term):
        indexed_on = entry.indexed_on
        if indexed_on is not None and day < indexed_on:
            continue
        key = id(entry)
        static = static_cache.get(key)
        if static is None:
            static = w_auth * entry.authority + w_rel * entry.relevance
            static_cache[key] = static
        score = static + gauss()
        signal = entry.seo_signal
        if signal is not no_seo_signal:
            score += w_seo * signal(day)
        penalty = penalties.get(entry.host)
        if penalty is not None and penalty.since <= day:
            score -= penalty.amount
        scored.append((score, entry))
    scored.sort(key=lambda pair: -pair[0])

    results: List[_SeedResult] = []
    per_host: Dict[str, int] = {}
    for score, entry in scored:
        count = per_host.get(entry.host, 0)
        if count >= engine.max_results_per_host:
            continue
        per_host[entry.host] = count + 1
        rank = len(results) + 1
        results.append(
            _SeedResult(
                rank=rank,
                url=entry.url,
                host=entry.host,
                path=entry.path,
                label=engine._result_label(entry.host, entry.path, day),
                score=score,
                entry=entry,
            )
        )
        if rank >= engine.serp_size:
            break
    return results


def _mid_study_world():
    """The bench-preset world with 60 days of campaign/intervention churn
    (no traffic pass needed to exercise the serving path)."""
    config = paper_preset(scale=SCALE, terms_per_vertical=TERMS_PER_VERTICAL)
    sim = Simulator(config)
    world = sim.build()
    for offset, day in enumerate(world.window):
        if offset >= WARMUP_DAYS:
            break
        world.today = day
        for campaign in sim.campaigns:
            campaign.on_day(world, day)
        sim.search_team.on_day(world, day)
        for firm in sim.firms:
            firm.on_day(world, day)
    return world


def _sample_queries(world) -> List[Tuple[str, object]]:
    days = list(world.window)[20:WARMUP_DAYS:7]
    # repro: allow-D005 verticals dict is built in fixed config order; sampling must match the golden serve sequence
    terms = [vertical.terms[0] for vertical in world.verticals.values()]
    return [(term, day) for term in terms for day in days]


def test_serp_columnar_vs_scalar():
    world = _mid_study_world()
    engine = world.engine
    queries = _sample_queries(world)
    static_cache: Dict[int, float] = {}
    per_query = len(queries)

    scalar_reps: List[float] = []
    columnar_reps: List[float] = []
    with caches_disabled():
        # -- equivalence first: same ranks, urls, labels, bit-exact scores #
        for term, day in queries:
            expected = scalar_serp(engine, static_cache, term, day)
            actual = engine.serp(term, day).results
            assert len(actual) == len(expected), (term, day)
            for exp, act in zip(expected, actual):
                assert (act.rank, act.url, act.host, act.path, act.label) == (
                    exp.rank, exp.url, exp.host, exp.path, exp.label), (term, day)
                assert act.score == exp.score, (term, day, exp.rank)

        # -- then timing over identical query streams -------------------- #
        candidates = [len(engine.index.candidates(term)) for term, _ in queries]

        # Interleave the two sides rep by rep — each side runs its full
        # query stream back to back, so both are measured in their own
        # steady state (finer interleaving pollutes the columnar path's
        # caches with the scalar loop's garbage churn and overstates its
        # cost by ~8%).  Each side's *minimum* rep is the headline:
        # standard timeit doctrine — on a shared box, higher readings
        # measure interference, not the code.  Medians land in the JSON
        # alongside for context.
        gc.collect()
        for _ in range(TIMING_REPS):
            t0 = time.perf_counter()
            for term, day in queries:
                scalar_serp(engine, static_cache, term, day)
            t1 = time.perf_counter()
            for term, day in queries:
                engine.serp(term, day)
            t2 = time.perf_counter()
            scalar_reps.append(t1 - t0)
            columnar_reps.append(t2 - t1)

    scalar_us = min(scalar_reps) / per_query * 1e6
    columnar_us = min(columnar_reps) / per_query * 1e6
    speedup = scalar_us / columnar_us

    # -- third pass: the per-(term, day) memo with caches on ------------- #
    for term, day in queries:
        engine.serp(term, day)  # populate the memo (all misses)
    hits_before = PERF.counters().get("cache.serp.hit", 0)
    memo_reps: List[float] = []
    gc.collect()
    for _ in range(TIMING_REPS):
        t0 = time.perf_counter()
        for term, day in queries:
            engine.serp(term, day)
        memo_reps.append(time.perf_counter() - t0)
    serp_hits = PERF.counters().get("cache.serp.hit", 0) - hits_before
    assert serp_hits >= TIMING_REPS * per_query, "memo pass was not all hits"
    memo_us = min(memo_reps) / per_query * 1e6

    write_bench_json("serp", {
        "scale": SCALE,
        "terms_per_vertical": TERMS_PER_VERTICAL,
        "queries": len(queries),
        "timing_reps": TIMING_REPS,
        "serp_size": engine.serp_size,
        "candidates_per_term": {
            "min": min(candidates), "max": max(candidates),
            "mean": sum(candidates) / len(candidates),
        },
        "scalar_us_per_serp": scalar_us,
        "columnar_us_per_serp": columnar_us,
        "scalar_us_per_serp_median": statistics.median(scalar_reps) / per_query * 1e6,
        "columnar_us_per_serp_median": statistics.median(columnar_reps) / per_query * 1e6,
        "speedup": speedup,
        "memo_us_per_serp": memo_us,
        "memo_us_per_serp_median": statistics.median(memo_reps) / per_query * 1e6,
        "memo_speedup_vs_columnar": columnar_us / memo_us,
        "memo_hits": serp_hits,
    }, ledger_metrics={
        "scalar_us_per_serp": scalar_us,
        "columnar_us_per_serp": columnar_us,
        "memo_us_per_serp": memo_us,
        "speedup": speedup,
        "memo_speedup_vs_columnar": columnar_us / memo_us,
    })
    print_comparison("SERP serving (us/serp)", [
        ("scalar (seed)", "-", f"{scalar_us:.1f}"),
        ("columnar", "-", f"{columnar_us:.1f}"),
        ("speedup", ">=3x target", f"{speedup:.2f}x"),
        ("memoized re-serve", "-", f"{memo_us:.2f}"),
    ])

    if AT_DEFAULT_SCALE:
        # Conservative floor: the target is >=3x, but CI noise must not
        # flake the suite; BENCH_serp.json carries the measured ratio.
        assert speedup > 1.5, f"columnar serving only {speedup:.2f}x faster"
        assert memo_us < columnar_us, "memoized serve slower than a re-rank"
