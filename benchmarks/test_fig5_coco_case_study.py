"""Figure 5 + Section 5.2.3: the rotating BIGLOVE storefront case study.

Paper: a counterfeit Chanel store (coco*.com) rotated across three domains
June-August 2014; PSR prevalence, AWStats traffic, and order volume moved
together across rotations with no downtime.  Conversion funnel: 93,509
visits, 60% with referrers, 5.6 pages/visit, ~0.7% conversion (a sale per
~151 visits), 47.7% of referring doorways seen in the crawl.
"""

from repro.analysis import conversion_metrics, rotation_case_study
from repro.reporting import sparkline

from benchlib import print_comparison


def _pick_case(paper_study):
    case = rotation_case_study(
        paper_study.dataset, paper_study.orderer,
        world=paper_study.world, campaign="BIGLOVE",
    )
    if case is None or case.rotations < 1:
        case = rotation_case_study(
            paper_study.dataset, paper_study.orderer, world=paper_study.world
        )
    return case


def test_fig5_rotating_store(benchmark, paper_study):
    case = benchmark(_pick_case, paper_study)
    assert case is not None, "no rotating store tracked"

    print()
    print(f"Figure 5 — rotating store {case.store_key} ({case.campaign})")
    print(f"  domains used: {' -> '.join(case.hosts)}")
    ordinals = sorted(case.top100_series)
    if ordinals:
        series = [case.top100_series[o] for o in ordinals]
        print(f"  top-100 PSRs/day {sparkline(series, 50)} max {max(series)}")
    if case.traffic_series:
        traffic_days = sorted(case.traffic_series)
        visits = [case.traffic_series[d] for d in traffic_days]
        print(f"  visits/day       {sparkline(visits, 50)} max {max(visits)}")
    if case.volume_points:
        print(f"  order samples: {len(case.volume_points)}, "
              f"growth {case.volume_points[-1][1]:.0f}")
    print_comparison(
        "Figure 5",
        [
            ("domain rotations", "2 (3 coco*.com domains)", str(case.rotations)),
            ("order series continuity", "continues across rotations",
             "monotone" if _monotone(case.volume_points) else "BROKEN"),
        ],
    )

    assert case.rotations >= 1
    assert _monotone(case.volume_points)
    # Each tenure window observed in PSR landings is disjoint-ish in time:
    # consecutive hosts appear in order.
    firsts = [case.tenures[h][0] for h in case.hosts if h in case.tenures]
    assert firsts == sorted(firsts)


def _monotone(points):
    values = [v for _, v in points]
    return all(a <= b for a, b in zip(values, values[1:]))


def test_conversion_funnel(benchmark, paper_study):
    world = paper_study.world
    candidates = [
        t.key for t in paper_study.orderer.tracked_with_samples(minimum=3)
        if world.store_at(t.key) is not None and world.store_at(t.key).awstats_public
    ]
    assert candidates, "no tracked store exposes AWStats"

    def best_metrics():
        best = None
        for key in candidates:
            metrics = conversion_metrics(
                paper_study.dataset, paper_study.orderer, world, key,
                world.window.start, world.window.end,
            )
            if metrics is None or metrics.total_visits == 0:
                continue
            if best is None or metrics.total_visits > best.total_visits:
                best = metrics
        return best

    metrics = benchmark(best_metrics)
    assert metrics is not None

    crawl_fraction = (
        metrics.referrer_doorways_seen_in_crawl / metrics.referrer_doorways
        if metrics.referrer_doorways else 0.0
    )
    print_comparison(
        "Section 5.2.3 conversion funnel",
        [
            ("visits", "93,509", f"{metrics.total_visits:,}"),
            ("referrer retention", "60%", f"{metrics.referrer_fraction:.0%}"),
            ("pages per visit", "5.6", f"{metrics.pages_per_visit:.1f}"),
            ("conversion rate", "0.7% (1 per 151 visits)",
             f"{metrics.conversion_rate:.2%} (1 per "
             f"{metrics.visits_per_order:.0f} visits)"),
            ("referrer doorways seen in crawl", "47.7%", f"{crawl_fraction:.0%}"),
        ],
    )

    assert metrics.total_visits > 100
    assert 0.25 < metrics.referrer_fraction <= 0.75
    assert 4.0 < metrics.pages_per_visit < 7.5
    # Conversion in the low single digits percent, not orders of magnitude off.
    assert 0.001 < metrics.conversion_rate < 0.06
    # The crawl sees a subset (not all, not none) of referring doorways.
    assert 0.0 < crawl_fraction <= 1.0
