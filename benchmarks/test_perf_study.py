"""End-to-end study timing: the content-addressed caches' headline A/B.

Runs the full pipeline (simulation, crawl, test orders, classification,
attribution) twice over the identical scenario — once under
``caches_disabled()`` and once with the caches live — and records both
wall times, their ratio, the hot-path breakdown from the always-on
:data:`repro.util.perf.PERF` registry, and the cache hit/miss/evict
counters into ``BENCH_study.json``.

The two legs must produce *byte-identical* PSR dumps: caching changes
wall-clock, never results.  That equivalence is asserted here on the big
preset as well as in ``tests/test_perf_cache.py`` on the small one.

Default configuration is the paper preset at the benchmark scale
(0.25 census, 8 terms/vertical, 3-day stride — mirrors
``benchmarks/conftest.py``).  The CI smoke sets
``REPRO_BENCH_STUDY_PRESET=small`` to keep the job short; other knobs:
``REPRO_BENCH_SCALE``, ``REPRO_BENCH_TERMS``, ``REPRO_BENCH_STUDY_DAYS``
(small preset window), ``REPRO_BENCH_JOBS``, ``REPRO_BENCH_CRAWL_JOBS``
(crawl shard processes — artifacts are byte-identical at any value, so
both legs run sharded and the cached-vs-uncached equality check doubles
as a shard-merge check; per-shard wall times, steal counts, and cpus land
in the ``shard`` block of the JSON).

A classification-only pass also measures the classifier-fit speedup from
``n_jobs`` threads; coefficients are identical either way
(``tests/test_classify.py`` pins that), so only the timing is recorded.

A third pair of legs measures the *persistent* disk tier: two identical
small-preset runs share one ``--disk-cache`` store (cold populates, warm
reads back), byte-compared and recorded under the ``disk`` block together
with the delta-checkpoint byte accounting at ``--checkpoint-every 1``
(``REPRO_BENCH_DISK_DAYS`` sets the window, default 30).

The speedup floor is asserted only at the default configuration and well
under the measured ratio so CI noise cannot flake the suite; the JSON is
the artifact.
"""

from __future__ import annotations

import gc
import os
import time

from repro.classify.pipeline import CampaignClassifier
from repro.crawler.serp_crawler import CrawlPolicy
from repro.ecosystem import paper_preset, small_preset
from repro.perf.cache import (
    caches_disabled,
    disk_cache,
    reset_caches,
    set_disk_cache,
)
from repro.study import StudyRun
from repro.util.perf import PERF

from benchlib import print_comparison, write_bench_json

PRESET = os.environ.get("REPRO_BENCH_STUDY_PRESET", "paper")
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.25"))
TERMS_PER_VERTICAL = int(os.environ.get("REPRO_BENCH_TERMS", "8"))
DAYS = int(os.environ.get("REPRO_BENCH_STUDY_DAYS", "70"))
FIT_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "4"))
CRAWL_JOBS = int(os.environ.get("REPRO_BENCH_CRAWL_JOBS", "1"))
AT_DEFAULT = not any(
    name in os.environ
    for name in ("REPRO_BENCH_STUDY_PRESET", "REPRO_BENCH_SCALE",
                 "REPRO_BENCH_TERMS", "REPRO_BENCH_STUDY_DAYS")
)
#: Disk-tier cold/warm A/B window (small preset, always — the disk legs
#: measure the persistent tier, not the scenario scale).
DISK_DAYS = int(os.environ.get("REPRO_BENCH_DISK_DAYS", "30"))


def _disk_tier_block(tmp_path):
    """Cold -> warm small-preset A/B over one shared store, plus the
    delta-checkpoint byte accounting at ``--checkpoint-every 1``."""

    def leg():
        reset_caches()
        PERF.reset()
        start = time.perf_counter()
        results = StudyRun(small_preset(days=DISK_DAYS), classify=False,
                           crawl_policy=CrawlPolicy(stride_days=2)).execute()
        wall_s = time.perf_counter() - start
        counters = {name: value
                    for name, value in sorted(PERF.counters().items())
                    if name.startswith("cache.")}
        path = os.path.join(str(tmp_path), "disk_leg.jsonl")
        results.dataset.dump_jsonl(path)
        with open(path, "rb") as handle:
            return wall_s, counters, handle.read()

    previous = set_disk_cache(os.path.join(str(tmp_path), "dcache"))
    try:
        cold_s, cold_counters, cold_bytes = leg()
        warm_s, warm_counters, warm_bytes = leg()
        # Store-health snapshot after both legs: entry/byte totals vs the
        # cap and the quarantine count, for the release gate's bands.
        stats = disk_cache().stats()
        store = {
            "entries": stats["entries"],
            "total_bytes": stats["total_bytes"],
            "max_bytes": stats["max_bytes"],
            "utilization": stats["utilization"],
            "quarantined": stats["quarantined"],
        }
    finally:
        set_disk_cache(previous)
        reset_caches()
    assert warm_bytes == cold_bytes, "warm start changed the PSR records"
    warm_hits = sum(value for name, value in warm_counters.items()
                    if name.endswith(".disk_hit"))
    assert warm_hits > 0, "warm leg never read the disk tier"
    assert any(name.endswith(".write") and value > 0
               for name, value in cold_counters.items()), \
        "cold leg never populated the disk tier"

    ckpt_run = StudyRun(small_preset(days=DISK_DAYS), classify=False,
                        crawl_policy=CrawlPolicy(stride_days=2),
                        checkpoint_path=os.path.join(str(tmp_path), "b.ckpt"),
                        checkpoint_every_days=1)
    ckpt_run.execute()
    checkpoint = ckpt_run.checkpoint_stats
    assert checkpoint["saves"] == DISK_DAYS
    assert checkpoint["delta_ratio"] < 0.40, (
        f"delta store wrote {checkpoint['delta_ratio']:.1%} "
        "of the whole-pickle bytes"
    )
    return {
        "days": DISK_DAYS,
        "cold_s": cold_s,
        "warm_s": warm_s,
        "warm_speedup": cold_s / warm_s,
        "cold_counters": cold_counters,
        "warm_counters": warm_counters,
        "checkpoint": checkpoint,
        "store": store,
    }


def _study_run():
    if PRESET == "paper":
        config = paper_preset(scale=SCALE, terms_per_vertical=TERMS_PER_VERTICAL)
        return StudyRun(config, crawl_policy=CrawlPolicy(stride_days=3),
                        seed_label_count=491, refinement_rounds=1,
                        jobs=CRAWL_JOBS)
    return StudyRun(small_preset(days=DAYS),
                    crawl_policy=CrawlPolicy(stride_days=2),
                    jobs=CRAWL_JOBS)


def _timed_leg():
    PERF.reset()
    start = time.perf_counter()
    results = _study_run().execute()
    total_s = time.perf_counter() - start
    return results, total_s, PERF.report(), PERF.counters()


def test_study_end_to_end_perf(tmp_path):
    # -- leg 1: caches disabled (the 'before' wall-clock) ---------------- #
    with caches_disabled():
        results_plain, total_s_uncached, perf_uncached, _ = _timed_leg()
    plain_path = os.path.join(str(tmp_path), "plain.jsonl")
    results_plain.dataset.dump_jsonl(plain_path)
    # Release leg 1's world before timing leg 2: a couple hundred
    # thousand retained PSRs tax every GC pass of the cached leg.
    del results_plain
    gc.collect()

    # -- leg 2: caches live, cold start --------------------------------- #
    reset_caches()
    results, total_s_cached, breakdown, counters = _timed_leg()
    cache_counters = {name: value for name, value in sorted(counters.items())
                      if name.startswith("cache.")}
    speedup = total_s_uncached / total_s_cached

    # -- equivalence: the two legs are byte-identical ------------------- #
    cached_path = os.path.join(str(tmp_path), "cached.jsonl")
    results.dataset.dump_jsonl(cached_path)
    with open(plain_path, "rb") as handle:
        plain_bytes = handle.read()
    with open(cached_path, "rb") as handle:
        cached_bytes = handle.read()
    assert cached_bytes == plain_bytes, "caching changed the PSR records"

    # -- classifier-fit thread scaling (identical weights, see tests) --- #
    fit_timing = {}
    if results.labeled_pages and len({p.campaign for p in results.labeled_pages}) >= 2:
        for jobs in (1, FIT_JOBS):
            t0 = time.perf_counter()
            CampaignClassifier(n_jobs=jobs).fit(results.labeled_pages)
            fit_timing[f"fit_s_jobs{jobs}"] = time.perf_counter() - t0

    # -- persistent disk tier: cold vs warm, plus delta checkpoints ----- #
    disk = _disk_tier_block(tmp_path)

    shard = results.shard_stats
    assert shard is not None, "study run recorded no shard stats"
    for field in ("jobs", "cpus", "mode", "crawl_days", "tasks", "steals",
                  "fallback_days", "per_shard_busy_s", "crawl_wall_s"):
        assert field in shard, f"shard stats missing {field}"
    assert shard["jobs"] == CRAWL_JOBS

    payload = {
        "preset": PRESET,
        "cpus": os.cpu_count(),
        "crawl_jobs": CRAWL_JOBS,
        "shard": shard,
        "scale": SCALE if PRESET == "paper" else None,
        "terms_per_vertical": TERMS_PER_VERTICAL if PRESET == "paper" else None,
        "days": DAYS if PRESET == "small" else None,
        "psrs": len(results.dataset),
        "total_s_uncached": total_s_uncached,
        "total_s_cached": total_s_cached,
        "cache_speedup": speedup,
        "perf": breakdown,
        "perf_uncached": perf_uncached,
        "cache_counters": cache_counters,
        "disk": disk,
        **fit_timing,
    }
    serp_stats = breakdown.get("engine.serp") or {}
    write_bench_json("study", payload, ledger_metrics={
        "psrs": len(results.dataset),
        "total_s_uncached": total_s_uncached,
        "total_s_cached": total_s_cached,
        "cache_speedup": speedup,
        "serp_mean_us": serp_stats.get("mean_us", 0.0),
        "disk_cold_s": disk["cold_s"],
        "disk_warm_s": disk["warm_s"],
        "disk_warm_speedup": disk["warm_speedup"],
        "checkpoint_delta_ratio": disk["checkpoint"]["delta_ratio"],
        "disk_store": disk["store"],
    })

    rows = [
        ("total (uncached)", "-", f"{total_s_uncached:.2f}s"),
        ("total (cached)", "-", f"{total_s_cached:.2f}s"),
        ("cache speedup", ">=1.5x target", f"{speedup:.2f}x"),
        (f"crawl shards (jobs={CRAWL_JOBS}, {shard['mode']})", "-",
         f"{shard['crawl_wall_s']:.2f}s wall, {shard['tasks']} tasks, "
         f"{shard['steals']} steals"),
        (f"disk warm start ({disk['days']}d small)", "-",
         f"{disk['cold_s']:.2f}s cold -> {disk['warm_s']:.2f}s warm "
         f"({disk['warm_speedup']:.2f}x)"),
        ("delta checkpoints (every=1)", "< 40% of pickle",
         f"{disk['checkpoint']['delta_ratio']:.1%} of "
         f"{disk['checkpoint']['payload_bytes_total'] / 1e6:.1f} MB"),
    ]
    for name in ("simulator.day", "engine.serp", "web.fetch", "classifier.fit"):
        stats = breakdown.get(name)
        if stats:
            rows.append((
                name, "-",
                f"{stats['total_s']:.2f}s over {stats['calls']} calls",
            ))
    if fit_timing:
        base = fit_timing.get("fit_s_jobs1")
        threaded = fit_timing.get(f"fit_s_jobs{FIT_JOBS}")
        if base and threaded:
            rows.append((
                f"fit n_jobs={FIT_JOBS}", "-",
                f"{base / threaded:.2f}x vs n_jobs=1",
            ))
    print_comparison("Study end-to-end (cached vs uncached)", rows)

    assert len(results.dataset) > 0
    assert "engine.serp" in breakdown and "simulator.day" in breakdown
    hit_counters = [name for name, value in cache_counters.items()
                    if name.endswith(".hit") and value > 0]
    assert hit_counters, "cached leg recorded no cache hits"
    if AT_DEFAULT:
        # The measured ratio (BENCH_study.json) is the claim; this floor
        # only guards against the caches silently stopping to matter.
        assert speedup > 1.2, f"caches only bought {speedup:.2f}x"
