"""End-to-end study timing: where a full run's wall-clock goes.

Runs the small-preset pipeline once (simulation, crawl, test orders,
classification, attribution) and records total wall time plus the hot-path
breakdown from the always-on :data:`repro.util.perf.PERF` registry —
the same numbers ``python -m repro perf`` prints — into
``BENCH_study.json``.

A second, classification-only pass measures the classifier-fit speedup
from ``n_jobs`` threads; attributions must be identical either way
(``tests/test_serp_determinism.py`` pins that), so only the timing is
recorded here.

No timing assertions: CI boxes vary.  The JSON is the artifact.
"""

from __future__ import annotations

import os
import time

from repro.classify.pipeline import CampaignClassifier
from repro.crawler.serp_crawler import CrawlPolicy
from repro.ecosystem import small_preset
from repro.study import StudyRun
from repro.util.perf import PERF

from benchlib import print_comparison, write_bench_json

DAYS = int(os.environ.get("REPRO_BENCH_STUDY_DAYS", "70"))
FIT_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "4"))


def test_study_end_to_end_perf():
    PERF.reset()
    start = time.perf_counter()
    results = StudyRun(
        small_preset(days=DAYS), crawl_policy=CrawlPolicy(stride_days=2)
    ).execute()
    total_s = time.perf_counter() - start
    breakdown = PERF.report()

    # -- classifier-fit thread scaling (identical weights, see tests) ---- #
    fit_timing = {}
    if results.labeled_pages and len({p.campaign for p in results.labeled_pages}) >= 2:
        for jobs in (1, FIT_JOBS):
            t0 = time.perf_counter()
            CampaignClassifier(n_jobs=jobs).fit(results.labeled_pages)
            fit_timing[f"fit_s_jobs{jobs}"] = time.perf_counter() - t0

    payload = {
        "days": DAYS,
        "psrs": len(results.dataset),
        "total_s": total_s,
        "perf": breakdown,
        **fit_timing,
    }
    write_bench_json("study", payload)

    rows = [("total", "-", f"{total_s:.2f}s")]
    for name in ("simulator.day", "engine.serp", "web.fetch", "classifier.fit"):
        stats = breakdown.get(name)
        if stats:
            rows.append((
                name, "-",
                f"{stats['total_s']:.2f}s over {stats['calls']} calls",
            ))
    if fit_timing:
        base = fit_timing.get("fit_s_jobs1")
        threaded = fit_timing.get(f"fit_s_jobs{FIT_JOBS}")
        if base and threaded:
            rows.append((
                f"fit n_jobs={FIT_JOBS}", "-",
                f"{base / threaded:.2f}x vs n_jobs=1",
            ))
    print_comparison("Study end-to-end (small preset)", rows)

    assert len(results.dataset) > 0
    assert "engine.serp" in breakdown and "simulator.day" in breakdown
