"""Section 5.2.2: "hacked"-label coverage, the root-only policy gap, and
doorway lifetimes before labeling.

Paper: only 2.5% of crawled PSRs carried the label; labeling roots only
leaves +49% of labelable results unlabeled (68,193 labeled vs 102,104
possible); labeled doorways lived 13-32 days (bounded) before the label
appeared — a multi-week monetization window.
"""

from repro.analysis import label_coverage, label_lifetimes, root_only_undercount

from benchlib import print_comparison


def test_label_coverage_and_gap(benchmark, paper_study):
    def analyze():
        return (
            label_coverage(paper_study.dataset),
            root_only_undercount(paper_study.dataset),
        )

    coverage, gap = benchmark(analyze)

    print_comparison(
        "Section 5.2.2 labeling",
        [
            ("PSRs labeled 'hacked'", "2.5%", f"{coverage.coverage:.1%}"),
            ("labeled results", "68,193", f"{gap.labeled_results:,}"),
            ("additional labelable (root-only gap)", "+49%",
             f"+{gap.undercount_fraction:.0%} ({gap.additional_labelable:,})"),
            ("labeled hosts", "1,282 doorways", str(coverage.labeled_hosts)),
        ],
    )

    # Shape: coverage is small but nonzero; the gap is substantial.
    assert 0.005 < coverage.coverage < 0.10
    assert gap.labeled_results > 0
    assert 0.2 < gap.undercount_fraction < 4.0


def test_label_lifetimes(benchmark, paper_study):
    lifetimes = benchmark(label_lifetimes, paper_study.dataset)

    print_comparison(
        "Section 5.2.2 doorway lifetimes before labeling",
        [
            ("measured doorways", "694 (588 pre-labeled)",
             f"{lifetimes.measured_hosts} ({lifetimes.pre_labeled_hosts} pre-labeled)"),
            ("lifetime bounds (mean days)", "13 - 32",
             f"{lifetimes.mean_lower_days:.0f} - {lifetimes.mean_upper_days:.0f}"),
        ],
    )

    assert lifetimes.measured_hosts > 5
    # The monetization window before labeling is multi-week on the upper
    # bound (paper: 13-32 days).
    assert 8 <= lifetimes.mean_upper_days <= 45
    assert lifetimes.mean_lower_days <= lifetimes.mean_upper_days
