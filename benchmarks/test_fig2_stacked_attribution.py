"""Figure 2: stacked per-campaign share of poisoned search results over
time for four verticals (Abercrombie, Beats By Dre, Louis Vuitton, Uggs).

Paper shape: classified campaigns account for ~58-66% of each vertical's
PSRs; named leaders dominate (e.g., NEWSORG over half of Beats By Dre PSRs
in early December); a thin "penalized" band sits at the bottom; the
remainder is unknown.
"""

import pytest

from repro.analysis import DailyAggregates, stacked_attribution
from repro.reporting import sparkline

from benchlib import print_comparison

FIGURE2_VERTICALS = ("Abercrombie", "Beats By Dre", "Louis Vuitton", "Uggs")

#: Paper: fraction of the vertical's PSRs attributed to known campaigns.
PAPER_CLASSIFIED_FRACTION = {
    "Abercrombie": 0.642,
    "Beats By Dre": 0.622,
    "Louis Vuitton": 0.660,
    "Uggs": 0.58,
}


@pytest.mark.parametrize("vertical", FIGURE2_VERTICALS)
def test_fig2_stacked_campaign_attribution(benchmark, paper_study, vertical):
    aggregates = DailyAggregates(paper_study.dataset)
    stacked = benchmark(
        stacked_attribution, paper_study.dataset, vertical, 5, aggregates
    )
    assert stacked.ordinals, f"no crawl coverage for {vertical}"

    total_series = [stacked.total_poisoned(i) for i in range(len(stacked.ordinals))]
    print()
    print(f"Figure 2 [{vertical}] — stacked bands (fraction of result slots)")
    for name, series in sorted(stacked.campaign_shares.items()):
        print(f"  {name:<16} {sparkline(series, 50)}  peak {max(series):.3f}")
    print(f"  {'misc':<16} {sparkline(stacked.misc_share, 50)}  peak {max(stacked.misc_share):.3f}")
    print(f"  {'unknown':<16} {sparkline(stacked.unknown_share, 50)}  peak {max(stacked.unknown_share):.3f}")
    print(f"  {'penalized':<16} {sparkline(stacked.penalized_share, 50)}  peak {max(stacked.penalized_share):.3f}")

    # Classified fraction of PSRs for this vertical.
    classified = sum(
        sum(series) for series in stacked.campaign_shares.values()
    ) + sum(stacked.misc_share)
    unknown = sum(stacked.unknown_share)
    denominator = classified + unknown
    classified_fraction = classified / denominator if denominator else 0.0
    print_comparison(
        f"Figure 2 [{vertical}]",
        [
            ("classified PSR fraction",
             f"{PAPER_CLASSIFIED_FRACTION[vertical]:.0%}",
             f"{classified_fraction:.0%}"),
            ("displayed campaigns", "4-6 leaders + misc", str(len(stacked.campaign_shares))),
        ],
    )

    # Shape: bands are valid fractions and stack to the vertical's total.
    for index in range(len(stacked.ordinals)):
        assert 0.0 <= total_series[index] <= 1.0
    # A majority of attributable mass belongs to known campaigns, with a
    # real unknown remainder (paper: 58-66% classified).
    assert 0.3 < classified_fraction <= 1.0
    assert unknown > 0.0
    # The penalized band exists but stays a minority share.
    assert max(stacked.penalized_share) <= max(total_series)
