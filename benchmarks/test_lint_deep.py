"""Static-analyzer benchmark: shallow + deep lint over the shipped tree.

Runs ``repro.lint`` (per-file D001–D010) and ``repro.lint --deep``
(interprocedural D101–D105) over ``src/`` and ``benchmarks/`` and records
the analyzer's cost profile into ``BENCH_lint.json``: file/graph sizes
(modules, functions, call edges, worker/merge roots) and wall time for a
*cold* pass (fresh summary cache) and a *warm* pass (every module summary
served from the content-digest cache).

The file doubles as the suppression-creep tripwire the shallow summary
always was, now for both passes: findings must be zero, no waiver may be
stale, and the recorded rule lists must match the live registries — a
rule added without regenerating this artifact fails here, which is
exactly how the pre-PR-7 file (still listing D001–D008) went stale.

Warm-vs-cold is asserted on the cache counters (hits == modules), not on
wall-clock, so CI noise cannot flake it; the timings land in the JSON.
"""

from __future__ import annotations

import json
import os
import tempfile

import benchlib
from repro.lint import all_rules, lint_paths, registered_codes
from repro.lint.flow import deep_lint, flow_rule_codes
from repro.lint.reporting import SCHEMA_VERSION, summary_dict
from repro.obs.manifest import run_manifest
from repro.util.atomicio import atomic_write

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
LINT_PATHS = [
    os.path.join(REPO_ROOT, "src"),
    os.path.join(REPO_ROOT, "benchmarks"),
]


def test_lint_tree_and_record_analyzer_cost():
    shallow = lint_paths(LINT_PATHS, all_rules(), root=REPO_ROOT)
    assert [f.format_text() for f in shallow.findings] == []
    assert shallow.suppressions_unused == 0

    with tempfile.TemporaryDirectory() as tmp:
        cache_dir = os.path.join(tmp, "flowcache")
        cold = deep_lint(LINT_PATHS, root=REPO_ROOT, cache_dir=cache_dir)
        warm = deep_lint(LINT_PATHS, root=REPO_ROOT, cache_dir=cache_dir)

    for deep in (cold, warm):
        assert [f.format_text() for f in deep.findings] == []
        assert deep.unused_suppression_sites == []

    # Cold pass summarizes everything; warm pass must be all cache hits.
    assert cold.stats.cache_misses == cold.stats.modules
    assert cold.stats.cache_hits == 0
    assert warm.stats.cache_hits == warm.stats.modules
    assert warm.stats.cache_misses == 0
    # Same program either way.
    assert warm.stats.call_edges == cold.stats.call_edges
    assert warm.stats.functions == cold.stats.functions

    # The artifact's rule lists must track the live registries (this is
    # the assertion that catches a stale checked-in BENCH_lint.json).
    assert shallow.rule_codes == registered_codes()
    assert cold.rule_codes == flow_rule_codes()

    manifest = run_manifest()
    payload = {"version": SCHEMA_VERSION, "manifest": manifest}
    payload.update(summary_dict(shallow, cold))
    payload["deep"]["stats_warm"] = warm.stats.to_dict()
    # The analyzer's cost profile joins the run ledger like every other
    # benchmark, keyed bench:lint, so the gate can band the warm-pass time.
    ledger_metrics = {
        "modules": cold.stats.modules,
        "call_edges": cold.stats.call_edges,
        "deep_lint": {
            "cold_s": cold.stats.total_s,
            "warm_s": warm.stats.total_s,
        },
    }
    from repro.obs.ledger import RunLedger, build_bench_record, flatten
    flat = flatten(ledger_metrics)
    payload["history"] = benchlib.bench_history("lint", flat)
    RunLedger(benchlib.ledger_path()).append(
        build_bench_record("lint", flat, manifest=manifest))
    path = os.path.join(benchlib.bench_output_dir(), "BENCH_lint.json")
    with atomic_write(path) as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    benchlib.WRITTEN_PATHS.append(path)

    benchlib.print_comparison(
        "repro lint --deep analyzer cost",
        [
            ("modules", "n/a", cold.stats.modules),
            ("call edges", "n/a", cold.stats.call_edges),
            ("worker roots", "n/a", cold.stats.worker_roots),
            ("cold total", "n/a", f"{cold.stats.total_s:.2f}s"),
            (
                "warm total",
                "n/a",
                f"{warm.stats.total_s:.2f}s "
                f"({warm.stats.cache_hits} cache hits)",
            ),
        ],
    )


def test_checked_in_artifact_matches_live_registries():
    """The committed BENCH_lint.json must list exactly the rules that
    exist today, for both passes."""
    with open(os.path.join(REPO_ROOT, "BENCH_lint.json")) as handle:
        payload = json.load(handle)
    assert payload["rules"] == registered_codes()
    assert payload["deep"]["rules"] == flow_rule_codes()
    assert payload["findings"] == 0
    assert payload["deep"]["findings"] == 0
    for stats_key in ("stats", "stats_warm"):
        stats = payload["deep"][stats_key]
        assert stats["modules"] > 0
        assert stats["call_edges"] > 0
        assert "total_s" in stats
