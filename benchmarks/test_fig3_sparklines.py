"""Figure 3: per-vertical poisoned-percentage sparklines, top-10 vs top-100.

Paper shape: 13 of 16 verticals exceed ~5% poisoned at some point; the five
most-targeted verticals peak at 31-42% of the top 100; top-100 maxima
exceed top-10 maxima for heavy verticals (it is easier to poison outside
the top 10); lightly-targeted verticals (Clarisonic, Golf) stay near zero.
"""

from repro.analysis import DailyAggregates, sparkline_extremes
from repro.reporting import sparkline_row

from benchlib import print_comparison

#: Paper Figure 3 maxima (%, top-10 / top-100) for reference verticals.
PAPER_MAXIMA = {
    "Moncler": (39.58, 42.45),
    "Louis Vuitton": (20.55, 37.30),
    "Uggs": (17.99, 37.96),
    "Beats By Dre": (23.39, 36.50),
    "Clarisonic": (0.25, 1.32),
    "Golf": (0.35, 1.28),
}


def test_fig3_poisoning_sparklines(benchmark, paper_study):
    aggregates = DailyAggregates(paper_study.dataset)
    verticals = paper_study.dataset.verticals()

    def build_all():
        return {
            vertical: (
                sparkline_extremes(paper_study.dataset, vertical, 10, aggregates),
                sparkline_extremes(paper_study.dataset, vertical, 100, aggregates),
            )
            for vertical in verticals
        }

    extremes = benchmark(build_all)

    print()
    print("Figure 3 (measured) — % of search results poisoned")
    print(f"{'vertical':<16} {'top-10':<50} {'top-100'}")
    for vertical in verticals:
        top10, top100 = extremes[vertical]
        row10 = sparkline_row("", [v for _, v in top10.series], width=24)
        row100 = sparkline_row("", [v for _, v in top100.series], width=24)
        print(f"{vertical:<16} {row10.strip():<50} {row100.strip()}")

    comparison = []
    for vertical, (paper10, paper100) in PAPER_MAXIMA.items():
        top10, top100 = extremes[vertical]
        comparison.append((
            vertical,
            f"max {paper10:.1f}% / {paper100:.1f}% (t10/t100)",
            f"max {top10.maximum * 100:.1f}% / {top100.maximum * 100:.1f}%",
        ))
    print_comparison("Figure 3 maxima", comparison)

    # Shape assertions.
    heavy = ("Moncler", "Louis Vuitton", "Uggs", "Beats By Dre")
    light = ("Clarisonic", "Golf")
    for vertical in heavy:
        _, top100 = extremes[vertical]
        assert top100.maximum > 0.09, vertical
    for heavy_vertical in heavy:
        for light_vertical in light:
            assert (
                extremes[heavy_vertical][1].maximum
                > extremes[light_vertical][1].maximum
            ), (heavy_vertical, light_vertical)
    # Minima well below maxima everywhere (bursty campaigns).
    for vertical in verticals:
        _, top100 = extremes[vertical]
        assert top100.minimum < top100.maximum * 0.5 + 1e-9
    # Most verticals cross 5% poisoned at some point (paper: 13 of 16).
    crossing = sum(1 for v in verticals if extremes[v][1].maximum > 0.05)
    assert crossing >= 10
