"""Section 5.3: seizure coverage, seized-store lifetimes, and campaign
reaction times.

Paper: 290 seizures directly observed = just 3.9% of the 7,484 stores;
seized stores lived 48-68 days before seizure; campaigns redirected 130/214
(GBC) and 57/76 (SMGPA) seized stores to backup domains within 7 and 15
days on average — domain agility that undermines the intervention.
"""

from repro.analysis import rotation_reactions, seized_store_lifetimes

from benchlib import print_comparison


def test_seized_store_lifetimes(benchmark, paper_study):
    stats = benchmark(seized_store_lifetimes, paper_study.dataset)
    assert stats, "no seizures observed in crawled PSRs"

    comparison = []
    paper_bounds = {"GBC": "58 - 68 days", "SMGPA": "48 - 56 days"}
    for s in stats:
        comparison.append((
            f"{s.firm} lifetimes (n={s.measured})",
            paper_bounds.get(s.firm, "?"),
            f"{s.mean_lower_days:.0f} - {s.mean_upper_days:.0f} days",
        ))
    print_comparison("Section 5.3.2 seized-store lifetimes", comparison)

    for s in stats:
        # Stores monetize for weeks before the seizure lands.
        assert s.mean_upper_days > 20
        assert s.mean_lower_days <= s.mean_upper_days


def test_seizure_coverage_small(benchmark, paper_study):
    def coverage():
        seized = {
            r.landing_host for r in paper_study.dataset.records if r.seizure_case
        }
        stores = paper_study.dataset.store_hosts()
        return len(seized), len(stores)

    seized_count, store_count = benchmark(coverage)
    fraction = seized_count / max(1, store_count)
    print_comparison(
        "Section 5.3.1 seizure coverage",
        [
            ("seizures observed in PSRs", "290", str(seized_count)),
            ("stores observed", "7,484", str(store_count)),
            ("fraction seized", "3.9%", f"{fraction:.1%}"),
        ],
    )
    assert seized_count > 0
    # Seizures touch a clear minority of the store population.
    assert fraction < 0.35


def test_rotation_reactions(benchmark, paper_study):
    stats = benchmark(rotation_reactions, paper_study.dataset)
    assert stats

    paper = {"GBC": ("130/214 redirected, 7d", 7.0), "SMGPA": ("57/76, 15d", 15.0)}
    comparison = []
    for s in stats:
        comparison.append((
            s.firm,
            paper.get(s.firm, ("?",))[0],
            f"{s.redirected_stores}/{s.seized_stores} redirected "
            f"({s.reseized_stores} re-seized), {s.mean_reaction_days:.0f}d mean",
        ))
    print_comparison("Section 5.3.2 post-seizure rotation", comparison)

    total_seized = sum(s.seized_stores for s in stats)
    total_redirected = sum(s.redirected_stores for s in stats)
    assert total_seized > 0
    # The majority of seized stores come back on new domains (paper: ~61%
    # and ~75%).
    assert total_redirected / total_seized > 0.3
    for s in stats:
        if s.redirected_stores:
            # Reaction inside three weeks; paper: 7-15 days.
            assert s.mean_reaction_days <= 21
