"""Figure 4: PSR prevalence vs. order activity for four campaigns (KEY,
MOONKIS, VERA, PHP?P=).

Paper shape: order rates track search visibility in all four campaigns;
KEY's PSRs collapse in mid-December after penalization and its stores stop
taking orders; MOONKIS sustains order volume from top-100 (not top-10)
visibility alone.
"""

import pytest

from repro.analysis import DailyAggregates, campaign_figure4
from repro.reporting import sparkline

from benchlib import print_comparison

FIGURE4_CAMPAIGNS = ("KEY", "MOONKIS", "VERA", "PHP?P=")

#: Paper panel maxima: campaign -> (volume, rate/day, top100, top10).
PAPER_PANELS = {
    "KEY": (132, 5.80, 1943, 172),
    "MOONKIS": (1273, 25.33, 645, 170),
    "VERA": (1742, 16.43, 357, 25),
    "PHP?P=": (2107, 17.82, 389.66, 76),
}


@pytest.mark.parametrize("campaign", FIGURE4_CAMPAIGNS)
def test_fig4_campaign_panel(benchmark, paper_study, campaign):
    aggregates = DailyAggregates(paper_study.dataset)
    panel = benchmark(
        campaign_figure4, paper_study.dataset, paper_study.orderer, campaign,
        4, 7, aggregates,
    )
    ordinals = sorted(panel.top100_series)
    assert ordinals, f"{campaign} never appeared in crawled SERPs"
    series100 = [panel.top100_series[o] for o in ordinals]
    series10 = [panel.top10_series.get(o, 0) for o in ordinals]
    print()
    print(f"Figure 4 [{campaign}]")
    print(f"  top-100 PSRs/day {sparkline(series100, 50)} max {max(series100)}")
    print(f"  top-10  PSRs/day {sparkline(series10, 50)} max {max(series10)}")
    if panel.rate_bins:
        rates = [r for _, r in panel.rate_bins]
        print(f"  order rate       {sparkline(rates, 50)} max {max(rates):.1f}/day")
    if panel.volume_points:
        print(f"  cumulative volume samples: {len(panel.volume_points)}, "
              f"final {panel.volume_points[-1][1]:.0f}")
    print(f"  visibility/order correlation: {panel.visibility_order_correlation:.2f}")

    paper = PAPER_PANELS[campaign]
    print_comparison(
        f"Figure 4 [{campaign}] maxima",
        [
            ("order volume", f"{paper[0]:,}", f"{(panel.volume_points[-1][1] if panel.volume_points else 0):.0f}"),
            ("order rate /day", f"{paper[1]}", f"{panel.peak_rate:.2f}"),
            ("top-100 PSRs/day", f"{paper[2]}", str(panel.max_top100)),
            ("top-10 PSRs/day", f"{paper[3]}", str(panel.max_top10)),
        ],
    )

    # Shape: top-10 counts never exceed top-100 counts.
    for ordinal in ordinals:
        assert panel.top10_series.get(ordinal, 0) <= panel.top100_series[ordinal]
    if campaign == "KEY":
        # The penalization collapse: late-window visibility is a small
        # fraction of the early-window peak.
        demotion = next(
            e for e in paper_study.world.events.of_kind("campaign_demotion")
            if e.payload["campaign"] == "KEY"
        )
        before = [v for o, v in panel.top100_series.items() if o < demotion.day.ordinal]
        after = [v for o, v in panel.top100_series.items() if o > demotion.day.ordinal + 7]
        assert before
        mean_after = (sum(after) / len(after)) if after else 0.0
        assert mean_after < (sum(before) / len(before)) * 0.3
    elif panel.rate_bins and len(panel.rate_bins) >= 4:
        # Other campaigns: visibility and orders co-move.
        assert panel.visibility_order_correlation > -0.2
