"""Multiprocess ablation sweep: jobs=1 vs jobs=N wall-clock.

Runs the eight intervention-policy counterfactuals
(``repro.analysis.ablations.VARIANT_ORDER``) sequentially and then
through the worker pool, asserts the outcomes are identical in the
deterministic variant order either way, and records both wall times into
``BENCH_ablations.json``.

Knobs: ``REPRO_BENCH_ABLATION_DAYS`` (window length, default 40 — long
enough that per-variant work dominates fork/pickle overhead) and
``REPRO_BENCH_JOBS`` (pool size, default 4).  The CI smoke shrinks both.

No absolute-time assertions, and no speedup floor either: the pool can
only beat sequential when there are cores to spread over — on a 1-vCPU
box (this repo's usual bench host) ``pool_speedup`` lands *below* 1x,
which is the hardware, not the code.  The JSON therefore records
``cpus`` and a ``cpu_bound`` flag (false when ``cpus == 1``: the ratio
is then pool *overhead*, not parallelism) alongside per-variant wall
times so stragglers are visible.
"""

from __future__ import annotations

import os
import time

from repro.analysis.ablations import VARIANT_ORDER, run_intervention_ablations
from repro.ecosystem import small_preset

from benchlib import print_comparison, write_bench_json

DAYS = int(os.environ.get("REPRO_BENCH_ABLATION_DAYS", "40"))
JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "4"))


def _factory():
    return small_preset(days=DAYS)


def test_ablation_pool_scaling():
    timings_jobs1 = {}
    t0 = time.perf_counter()
    sequential = run_intervention_ablations(_factory, jobs=1,
                                            timings=timings_jobs1)
    total_s_jobs1 = time.perf_counter() - t0

    timings_pooled = {}
    t0 = time.perf_counter()
    pooled = run_intervention_ablations(_factory, jobs=JOBS,
                                        timings=timings_pooled)
    total_s_pooled = time.perf_counter() - t0

    assert [o.name for o in sequential] == list(VARIANT_ORDER)
    assert [o.name for o in pooled] == list(VARIANT_ORDER)
    assert pooled == sequential, "pool changed ablation outcomes"
    assert set(timings_jobs1) == set(VARIANT_ORDER)
    assert set(timings_pooled) == set(VARIANT_ORDER)

    cpus = os.cpu_count() or 1
    speedup = total_s_jobs1 / total_s_pooled
    # On a 1-vCPU host the pool cannot beat sequential, so the ratio
    # measures pool overhead, not parallelism — cpu_bound records which
    # reading applies so ~1.0x there isn't mistaken for a regression.
    cpu_bound = cpus > 1
    write_bench_json("ablations", {
        "days": DAYS,
        "jobs": JOBS,
        "cpus": cpus,
        "variants": list(VARIANT_ORDER),
        "total_s_jobs1": total_s_jobs1,
        f"total_s_jobs{JOBS}": total_s_pooled,
        "variant_wall_s_jobs1": {name: timings_jobs1[name]
                                 for name in VARIANT_ORDER},
        f"variant_wall_s_jobs{JOBS}": {name: timings_pooled[name]
                                       for name in VARIANT_ORDER},
        "pool_speedup": speedup,
        "cpu_bound": cpu_bound,
    })
    slowest = max(VARIANT_ORDER, key=timings_jobs1.get)
    print_comparison("Intervention ablations (8 variants)", [
        ("jobs=1", "-", f"{total_s_jobs1:.2f}s"),
        (f"jobs={JOBS}", "-", f"{total_s_pooled:.2f}s"),
        (f"speedup ({cpus} cpus)",
         "-" if cpu_bound else "overhead only: 1 vCPU",
         f"{speedup:.2f}x"),
        ("slowest variant", "-",
         f"{slowest} ({timings_jobs1[slowest]:.2f}s)"),
    ])
