"""Multiprocess ablation sweep: jobs=1 vs jobs=N wall-clock.

Runs the eight intervention-policy counterfactuals
(``repro.analysis.ablations.VARIANT_ORDER``) sequentially and then
through the worker pool, asserts the outcomes are identical in the
deterministic variant order either way, and records both wall times into
``BENCH_ablations.json``.

Knobs: ``REPRO_BENCH_ABLATION_DAYS`` (window length, default 40 — long
enough that per-variant work dominates fork/pickle overhead) and
``REPRO_BENCH_JOBS`` (pool size, default 4).  The CI smoke shrinks both.

No absolute-time assertions, and no speedup floor either: the pool can
only beat sequential when there are cores to spread over — on a 1-vCPU
box (this repo's usual bench host) ``pool_speedup`` lands *below* 1x,
which is the hardware, not the code.  The JSON therefore records
``cpus`` alongside the ratio so readers can interpret it.
"""

from __future__ import annotations

import os
import time

from repro.analysis.ablations import VARIANT_ORDER, run_intervention_ablations
from repro.ecosystem import small_preset

from benchlib import print_comparison, write_bench_json

DAYS = int(os.environ.get("REPRO_BENCH_ABLATION_DAYS", "40"))
JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "4"))


def _factory():
    return small_preset(days=DAYS)


def test_ablation_pool_scaling():
    t0 = time.perf_counter()
    sequential = run_intervention_ablations(_factory, jobs=1)
    total_s_jobs1 = time.perf_counter() - t0

    t0 = time.perf_counter()
    pooled = run_intervention_ablations(_factory, jobs=JOBS)
    total_s_pooled = time.perf_counter() - t0

    assert [o.name for o in sequential] == list(VARIANT_ORDER)
    assert [o.name for o in pooled] == list(VARIANT_ORDER)
    assert pooled == sequential, "pool changed ablation outcomes"

    speedup = total_s_jobs1 / total_s_pooled
    write_bench_json("ablations", {
        "days": DAYS,
        "jobs": JOBS,
        "cpus": os.cpu_count(),
        "variants": list(VARIANT_ORDER),
        "total_s_jobs1": total_s_jobs1,
        f"total_s_jobs{JOBS}": total_s_pooled,
        "pool_speedup": speedup,
    })
    print_comparison("Intervention ablations (8 variants)", [
        ("jobs=1", "-", f"{total_s_jobs1:.2f}s"),
        (f"jobs={JOBS}", "-", f"{total_s_pooled:.2f}s"),
        (f"speedup ({os.cpu_count()} cpus)", "-", f"{speedup:.2f}x"),
    ])
