"""Figure 6: order-number curves for PHP?P= stores around a domain seizure.

Paper: four international stores (Abercrombie UK/DE, Hollister UK, Woolrich
IT); the Abercrombie-UK domain was seized 2014-02-09, its order-number
growth dropped immediately — but did not stop, because the campaign
redirected doorways to a backup domain within 24 hours, and the sibling
stores kept selling undisturbed.
"""

from repro.analysis import seizure_order_case_study
from repro.reporting import sparkline

from benchlib import print_comparison


def test_fig6_seizure_order_curves(benchmark, paper_study):
    case = benchmark(
        seizure_order_case_study, paper_study.dataset, paper_study.orderer,
        "PHP?P=", 4, paper_study.world,
    )
    assert case.stores, "no PHP?P= stores tracked"

    print()
    print("Figure 6 — PHP?P= store order numbers")
    for track in case.stores:
        numbers = [n - track.samples[0][1] for _, n in track.samples]
        marker = (
            f" [seized day {track.seizure_observed}]"
            if track.seizure_observed is not None else ""
        )
        print(f"  {track.locale_label:<24} {sparkline(numbers, 40)} "
              f"+{numbers[-1] if numbers else 0}{marker}")
    seized = case.seized_tracks()
    print_comparison(
        "Figure 6",
        [
            ("stores plotted", "4 international stores", str(len(case.stores))),
            ("seizure events on plot", "1 (abercrombie[uk], Feb 9)",
             str(len(seized))),
        ],
    )

    # Shape assertions: every curve is monotone (order numbers only grow).
    for track in case.stores:
        numbers = [n for _, n in track.samples]
        assert numbers == sorted(numbers)

    if seized:
        # The seized store's growth stalls in the window right after the
        # seizure (before the backup-domain rotation restores flow) —
        # compare the rate across the seizure boundary, ignoring stores
        # with near-zero activity where the comparison is noise.
        slowed = 0
        active = 0
        for track in seized:
            day = track.seizure_observed
            before = [(d, n) for d, n in track.samples if day - 21 <= d <= day]
            after = [(d, n) for d, n in track.samples if day <= d <= day + 21]
            if len(before) >= 2 and len(after) >= 2:
                rate_before = (before[-1][1] - before[0][1]) / max(1, before[-1][0] - before[0][0])
                rate_after = (after[-1][1] - after[0][1]) / max(1, after[-1][0] - after[0][0])
                if rate_before < 0.2:
                    continue
                active += 1
                if rate_after <= rate_before * 1.2:
                    slowed += 1
        assert active == 0 or slowed >= 1
