"""Section 4.2.2: campaign-classifier accuracy.

Paper: 10-fold cross-validation on 491 hand-labeled pages over 52 campaigns
yields 86.8% held-out accuracy, against a 1.9% uniform-random baseline; the
L1 regularizer keeps per-campaign models sparse ("a handful of HTML
features").
"""

from repro.classify import cross_validate_accuracy, extract_features

from benchlib import print_comparison


def test_classifier_cross_validation(benchmark, paper_study):
    labeled = paper_study.labeled_pages
    assert len(labeled) >= 100
    feature_maps = [extract_features(p.html) for p in labeled]
    labels = [p.campaign for p in labeled]
    classes = len(set(labels))

    accuracy, fold_scores = benchmark.pedantic(
        cross_validate_accuracy,
        args=(feature_maps, labels),
        kwargs={"k": 10, "seed": 7},
        rounds=1, iterations=1,
    )

    chance = 1.0 / classes
    print_comparison(
        "Section 4.2.2 classifier",
        [
            ("labeled pages", "491", str(len(labeled))),
            ("campaign classes", "52", str(classes)),
            ("10-fold CV accuracy", "86.8%", f"{accuracy:.1%}"),
            ("uniform-random baseline", "1.9%", f"{chance:.1%}"),
        ],
    )

    assert classes >= 30
    assert accuracy > 0.70
    assert accuracy > chance * 10
    # Sanity: folds individually far above chance.
    assert min(fold_scores) > chance * 5


def test_model_sparsity(benchmark, paper_study):
    classifier = paper_study.classifier
    assert classifier is not None

    sparsity = benchmark(classifier.model.sparsity)
    vocab = len(classifier.vocabulary)
    mean_nonzero = sum(sparsity.values()) / len(sparsity)
    print_comparison(
        "L1 sparsity",
        [
            ("vocabulary size", "tens of thousands of features", f"{vocab:,}"),
            ("mean nonzero weights/campaign", "a handful",
             f"{mean_nonzero:.0f} ({mean_nonzero / vocab:.1%} of features)"),
        ],
    )
    assert mean_nonzero < vocab * 0.25
