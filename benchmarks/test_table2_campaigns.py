"""Table 2: per-campaign doorways, stores, brands, peak duration.

Paper shape: a handful of large campaigns (KEY, MOKLELE, NEWSORG, G2GMART)
account for most doorways; campaigns run at peak ~51.3 days on average;
multi-brand campaigns abuse up to 30 trademarks.
"""

from repro.analysis import DailyAggregates, campaign_table
from repro.reporting import render_table
from repro.util.stats import mean

from benchlib import print_comparison

#: Selected Table 2 rows: campaign -> (doorways, stores, brands, peak days).
PAPER_TABLE2 = {
    "KEY": (1980, 97, 28, 65),
    "MOKLELE": (982, 15, 4, 36),
    "NEWSORG": (926, 7, 5, 24),
    "G2GMART": (916, 28, 3, 53),
    "BIGLOVE": (767, 92, 30, 92),
    "MSVALIDATE": (530, 98, 6, 52),
    "MOONKIS": (95, 7, 4, 99),
    "VERA": (155, 38, 12, 156),
    "PHP?P=": (255, 55, 24, 96),
}


def test_table2_campaign_census(benchmark, paper_study):
    brand_names = [b.name for b in paper_study.world.brand_catalog.all()]
    aggregates = DailyAggregates(paper_study.dataset)
    rows = benchmark(
        campaign_table, paper_study.dataset, paper_study.archive, brand_names,
        1, aggregates,
    )
    rows.sort(key=lambda r: -r.doorways)
    print()
    print(render_table(
        ["Campaign", "# Doorways", "# Stores", "# Brands", "Peak (days)"],
        [[r.campaign, r.doorways, r.stores, r.brands, r.peak_days] for r in rows],
        title="Table 2 (measured, scaled scenario)",
    ))
    by_name = {r.campaign: r for r in rows}
    measured_peak_mean = mean([r.peak_days for r in rows])
    print_comparison(
        "Table 2 summary",
        [
            ("campaigns classified", "52 (38 with 25+ doorways)", str(len(rows))),
            ("mean peak duration", "51.3 days", f"{measured_peak_mean:.1f} days"),
            ("largest fleet", "KEY (1,980 doorways)", rows[0].campaign),
        ],
    )

    # Shape assertions.
    assert len(rows) >= 30  # most labeled campaigns observed
    assert "KEY" in by_name
    # KEY is among the biggest doorway fleets, as in the paper.
    top5 = [r.campaign for r in rows[:5]]
    assert "KEY" in top5
    # Doorway census is skewed: top 20% of campaigns own > 40% of doorways.
    doorways = sorted((r.doorways for r in rows), reverse=True)
    top_fifth = doorways[: max(1, len(doorways) // 5)]
    assert sum(top_fifth) > 0.4 * sum(doorways)
    # Peak durations are bounded by the study window and mostly multi-week.
    assert all(1 <= r.peak_days <= 245 for r in rows)
    assert measured_peak_mean > 20
    # Multi-brand campaigns detected (paper: up to 30 brands).
    assert max(r.brands for r in rows) >= 4
