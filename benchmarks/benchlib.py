"""Shared helpers for benchmark reporting."""

import json
import os

from repro.obs.ledger import RunLedger, build_bench_record, flatten
from repro.obs.manifest import run_manifest
from repro.util.atomicio import atomic_write

#: BENCH files written this session; conftest verifies each carries the
#: run manifest before the benchmark session is allowed to pass.
WRITTEN_PATHS = []


def print_comparison(title: str, rows) -> None:
    """Uniform 'paper vs measured' block under each benchmark."""
    print()
    print(f"== {title} ==")
    width = max(len(r[0]) for r in rows)
    for name, paper, measured in rows:
        print(f"  {name:<{width}}  paper: {paper:<28} measured: {measured}")


def bench_output_dir() -> str:
    """Where BENCH_*.json files land (repo root unless overridden)."""
    configured = os.environ.get("REPRO_BENCH_DIR")
    if configured:
        os.makedirs(configured, exist_ok=True)
        return configured
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def ledger_path() -> str:
    """The run ledger benchmarks append to: ``$REPRO_LEDGER``, falling
    back to ``ledger.jsonl`` next to the BENCH files (the committed
    longitudinal store)."""
    return os.environ.get("REPRO_LEDGER") or os.path.join(
        bench_output_dir(), "ledger.jsonl")


def bench_history(name: str, metrics: dict, limit: int = 16) -> dict:
    """Ledger-backed history fields for one benchmark's payload.

    For each headline metric, its value across this benchmark's past
    ledger records (oldest first, current run excluded — it is appended
    after the payload is built), so a BENCH file alone shows the
    trajectory that produced it."""
    ledger = RunLedger(ledger_path())
    series = ledger.history(sorted(flatten(metrics)), kind=f"bench:{name}")
    return {
        "runs": len(ledger.records(kind=f"bench:{name}")),
        "series": {path: values[-limit:]
                   for path, values in sorted(series.items()) if values},
    }


def write_bench_json(name: str, payload: dict, ledger_metrics=None) -> str:
    """Write one benchmark's results as ``BENCH_<name>.json``.

    The payload should already be JSON-serializable; a ``schema`` key is
    added so downstream tooling can detect format changes, and every file
    carries the shared run ``manifest`` (version, git SHA, host, switches)
    so trajectories stay comparable across machines and commits.

    ``ledger_metrics`` (a flat or nested dict of the benchmark's headline
    numbers) additionally appends one ``bench:<name>`` record to the run
    ledger and embeds the ledger-backed ``history`` block in the payload,
    so the gate can band this benchmark and the BENCH file shows its own
    trajectory.
    """
    path = os.path.join(bench_output_dir(), f"BENCH_{name}.json")
    manifest = run_manifest()
    body = {"schema": 1, "benchmark": name, "manifest": manifest, **payload}
    if ledger_metrics is not None:
        metrics = flatten(ledger_metrics)
        body["history"] = bench_history(name, metrics)
        RunLedger(ledger_path()).append(
            build_bench_record(name, metrics, manifest=manifest))
    with atomic_write(path) as handle:
        json.dump(body, handle, indent=2, sort_keys=True)
        handle.write("\n")
    WRITTEN_PATHS.append(path)
    return path
