"""Shared helpers for benchmark reporting."""

import json
import os

from repro.obs.manifest import run_manifest
from repro.util.atomicio import atomic_write

#: BENCH files written this session; conftest verifies each carries the
#: run manifest before the benchmark session is allowed to pass.
WRITTEN_PATHS = []


def print_comparison(title: str, rows) -> None:
    """Uniform 'paper vs measured' block under each benchmark."""
    print()
    print(f"== {title} ==")
    width = max(len(r[0]) for r in rows)
    for name, paper, measured in rows:
        print(f"  {name:<{width}}  paper: {paper:<28} measured: {measured}")


def bench_output_dir() -> str:
    """Where BENCH_*.json files land (repo root unless overridden)."""
    configured = os.environ.get("REPRO_BENCH_DIR")
    if configured:
        os.makedirs(configured, exist_ok=True)
        return configured
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def write_bench_json(name: str, payload: dict) -> str:
    """Write one benchmark's results as ``BENCH_<name>.json``.

    The payload should already be JSON-serializable; a ``schema`` key is
    added so downstream tooling can detect format changes, and every file
    carries the shared run ``manifest`` (version, git SHA, host, switches)
    so trajectories stay comparable across machines and commits.
    """
    path = os.path.join(bench_output_dir(), f"BENCH_{name}.json")
    with atomic_write(path) as handle:
        json.dump(
            {"schema": 1, "benchmark": name, "manifest": run_manifest(),
             **payload},
            handle, indent=2, sort_keys=True)
        handle.write("\n")
    WRITTEN_PATHS.append(path)
    return path
