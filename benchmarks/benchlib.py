"""Shared helpers for benchmark reporting."""


def print_comparison(title: str, rows) -> None:
    """Uniform 'paper vs measured' block under each benchmark."""
    print()
    print(f"== {title} ==")
    width = max(len(r[0]) for r in rows)
    for name, paper, measured in rows:
        print(f"  {name:<{width}}  paper: {paper:<28} measured: {measured}")
