"""Table 3: domain seizures per brand-protection firm.

Paper: GBC — 69 cases, 17 brands, 31,819 domains seized, 214 stores
observed in PSRs, 40 classified, 17 campaigns; SMGPA — 47 cases, 11 brands,
8,056 seized, 76 observed, 20 classified, 12 campaigns.  GBC out-seizes
SMGPA across the board; observed stores are a small slice of the Schedule A
totals; classified stores map onto many distinct campaigns.
"""

from repro.analysis import seizure_table
from repro.reporting import render_table

from benchlib import print_comparison

PAPER_TABLE3 = {
    "GBC": (69, 17, 31_819, 214, 40, 17),
    "SMGPA": (47, 11, 8_056, 76, 20, 12),
}


def test_table3_seizure_census(benchmark, paper_study):
    rows = benchmark(seizure_table, paper_study.dataset, paper_study.crawler)
    print()
    print(render_table(
        ["Firm", "# Cases", "# Brands", "# Seized", "# Stores",
         "# Classified", "# Campaigns"],
        [[r.firm, r.cases, r.brands, r.seized_domains, r.observed_stores,
          r.classified_stores, r.campaigns] for r in rows],
        title="Table 3 (measured, scaled scenario)",
    ))
    by_firm = {r.firm: r for r in rows}
    gbc = by_firm.get("GBC")
    smgpa = by_firm.get("SMGPA")
    comparison = []
    for firm, paper in PAPER_TABLE3.items():
        row = by_firm.get(firm)
        measured = (
            f"{row.cases} cases / {row.seized_domains} seized / "
            f"{row.observed_stores} stores" if row else "not observed"
        )
        comparison.append(
            (firm, f"{paper[0]} cases / {paper[2]:,} seized / {paper[3]} stores", measured)
        )
    print_comparison("Table 3 per firm", comparison)

    assert gbc is not None, "GBC seizures must surface in crawled PSRs"
    # GBC's program dominates SMGPA's, as in the paper.
    if smgpa is not None:
        assert gbc.seized_domains >= smgpa.seized_domains
        assert gbc.brands >= smgpa.brands
    # Cases are bulk filings: domains-per-case well above 1.
    assert gbc.seized_domains / max(1, gbc.cases) > 2
    # Classified subset is nonempty and spans multiple campaigns.
    assert gbc.classified_stores > 0
    assert gbc.campaigns >= 2
    # Stores observed via PSRs are a subset of all Schedule A domains.
    assert gbc.observed_stores <= gbc.seized_domains
