"""Ablation: intervention-policy counterfactuals (the paper's conclusion).

Section 6 argues that search and seizure interventions, as deployed, lack
the coverage and responsiveness to dent the business — and that more
reactive, more comprehensive versions would.  This bench runs the same
scenario under the variant policies and compares campaign order volume:

* removing interventions entirely should *raise* revenue (they do bite a
  little);
* full-path labeling, weekly reactive seizures, and aggressive demotion
  should each cut revenue well below the observed baseline;
* the payment intervention (Section 4.3.2's flagged future work) leaves
  order *creations* untouched but cuts *completed sales* — its distinctive
  signature;
* seizing dedicated doorway domains (footnote 6's alternative) barely moves
  revenue: doorways are cheap, numerous, and mostly compromised third
  parties that cannot be seized at all.
"""

from repro.analysis import run_intervention_ablations
from repro.ecosystem import small_preset
from repro.reporting import render_table

from benchlib import print_comparison


def test_intervention_ablations(benchmark):
    outcomes = benchmark.pedantic(
        run_intervention_ablations,
        args=(lambda: small_preset(days=70),),
        rounds=1, iterations=1,
    )
    by_name = {o.name: o for o in outcomes}
    baseline = by_name["baseline"]

    print()
    print(render_table(
        ["Policy", "Orders", "vs base", "Sales", "vs base", "PSRs", "Labeled %", "Seized"],
        [
            [o.name, o.total_orders, f"{o.orders_vs(baseline):.2f}x",
             o.completed_sales, f"{o.sales_vs(baseline):.2f}x",
             o.psr_count, f"{o.labeled_fraction:.1%}", o.seized_domains]
            for o in outcomes
        ],
        title="Intervention ablations (orders created / sales completed)",
    ))
    print_comparison(
        "Section 6 counterfactuals",
        [
            ("observed interventions", "limited impact",
             f"baseline keeps {baseline.orders_vs(by_name['no-interventions']):.0%} "
             "of unopposed revenue"),
            ("more comprehensive labeling", "should undermine business",
             f"{by_name['full-path-labels'].orders_vs(baseline):.2f}x baseline"),
            ("more reactive seizures", "should undermine business",
             f"{by_name['reactive-seizures'].orders_vs(baseline):.2f}x baseline"),
        ],
    )

    # Interventions bite a little today...
    assert by_name["no-interventions"].total_orders > baseline.total_orders
    # ...but the observed policy leaves most of the business intact.
    assert baseline.orders_vs(by_name["no-interventions"]) > 0.6
    # Each strengthened policy beats the baseline.
    for name in ("full-path-labels", "interstitial-labels", "reactive-seizures",
                 "aggressive-demotion"):
        assert by_name[name].total_orders < baseline.total_orders, name
    # Interstitials (blocking the click) beat the same labels as clickable
    # warnings — Section 3.2.1's policy contrast.
    assert (by_name["interstitial-labels"].total_orders
            <= by_name["full-path-labels"].total_orders * 1.05)
    # Mechanism checks: the levers actually moved.
    assert by_name["full-path-labels"].labeled_fraction > baseline.labeled_fraction * 5
    assert by_name["reactive-seizures"].seized_domains > baseline.seized_domains
    assert by_name["aggressive-demotion"].psr_count < baseline.psr_count
    # Payment intervention: order creation survives, completion does not.
    payment = by_name["payment-intervention"]
    assert payment.orders_vs(baseline) > 0.85
    assert payment.sales_vs(baseline) < 0.9
    assert payment.sales_vs(baseline) < payment.orders_vs(baseline)
    # Doorway seizures (footnote 6): a real but modest dent — far weaker
    # than any of the strengthened store-side policies.
    doorways = by_name["doorway-seizures"]
    # "Barely moves" = statistically near 1.0x; stochastic run-to-run noise
    # in the tiny scenario can land slightly above parity.
    assert 0.6 < doorways.orders_vs(baseline) <= 1.15
    for name in ("full-path-labels", "reactive-seizures", "aggressive-demotion"):
        assert by_name[name].total_orders < doorways.total_orders, name
