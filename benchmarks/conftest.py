"""Benchmark fixtures.

The full paper-preset study (16 verticals, 52 labeled + background
campaigns, 245 days) runs once per benchmark session at a reduced scale;
every table/figure benchmark then measures its *analysis* computation and
prints the paper-vs-measured comparison.

Scale note: the paper crawled 100 terms/vertical daily with thousands of
doorways; the benchmark scenario uses SCALE=0.25 of the doorway/store
census, 8 terms/vertical, and a 3-day crawl stride.  (The content-
addressed caches made this scale affordable: the pre-cache baseline ran
at 0.06.)  Absolute counts are still ~25x smaller than the paper's;
comparisons are about *shape* (who wins, skew, ratios, crossovers), as
DESIGN.md documents.
"""

from __future__ import annotations

import json

import pytest

import benchlib
from repro import StudyRun
from repro.crawler import CrawlPolicy
from repro.ecosystem import paper_preset

SCALE = 0.25
TERMS_PER_VERTICAL = 8
CRAWL_STRIDE_DAYS = 3

#: Provenance fields every BENCH_*.json must carry (see benchlib).
_MANIFEST_REQUIRED = ("schema", "version", "git_sha", "cpus", "created_at")


def pytest_sessionfinish(session, exitstatus):
    """Fail the benchmark session if any BENCH file lacks its manifest."""
    missing = []
    for path in benchlib.WRITTEN_PATHS:
        with open(path) as handle:
            payload = json.load(handle)
        manifest = payload.get("manifest")
        if not isinstance(manifest, dict) or any(
                key not in manifest for key in _MANIFEST_REQUIRED):
            missing.append(path)
    if missing:
        raise pytest.UsageError(
            f"BENCH files missing run manifest: {', '.join(missing)}")


@pytest.fixture(scope="session")
def paper_study():
    config = paper_preset(scale=SCALE, terms_per_vertical=TERMS_PER_VERTICAL)
    run = StudyRun(
        config,
        crawl_policy=CrawlPolicy(stride_days=CRAWL_STRIDE_DAYS),
        seed_label_count=491,
        refinement_rounds=1,
    )
    return run.execute()
